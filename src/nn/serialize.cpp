// Text (de)serialisation of LstmClassifier: architecture line followed by all
// weight matrices in full precision.  Human-inspectable and
// platform-independent; model files are small (hidden sizes are modest).
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "nn/classifier.hpp"

namespace trajkit::nn {
namespace {

constexpr const char* kMagic = "trajkit_lstm_classifier_v1";

void write_matrix(std::ostream& os, const Matrix& m) {
  os << m.rows() << ' ' << m.cols() << '\n';
  os << std::setprecision(17);
  for (std::size_t i = 0; i < m.size(); ++i) {
    os << m.data()[i] << (((i + 1) % 8 == 0) ? '\n' : ' ');
  }
  os << '\n';
}

Matrix read_matrix(std::istream& is) {
  std::size_t rows = 0;
  std::size_t cols = 0;
  if (!(is >> rows >> cols)) throw std::runtime_error("model load: bad matrix header");
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (!(is >> m.data()[i])) throw std::runtime_error("model load: truncated matrix");
  }
  return m;
}

void copy_into(Matrix& dst, const Matrix& src, const char* what) {
  if (dst.rows() != src.rows() || dst.cols() != src.cols()) {
    throw std::runtime_error(std::string("model load: shape mismatch in ") + what);
  }
  dst = src;
}

}  // namespace

void LstmClassifier::save(std::ostream& os) const {
  os << kMagic << '\n';
  os << config_.input_dim << ' ' << config_.hidden_dim << ' ' << config_.num_layers
     << ' ' << config_.learning_rate << ' ' << config_.grad_clip << ' '
     << config_.batch_size << '\n';
  for (const auto& layer : layers_) {
    write_matrix(os, layer.weights());
    write_matrix(os, layer.bias());
  }
  write_matrix(os, head_.weights());
  write_matrix(os, head_.bias());
}

LstmClassifier LstmClassifier::load(std::istream& is) {
  std::string magic;
  if (!(is >> magic) || magic != kMagic) {
    throw std::runtime_error("model load: bad magic");
  }
  LstmClassifierConfig cfg;
  if (!(is >> cfg.input_dim >> cfg.hidden_dim >> cfg.num_layers >> cfg.learning_rate >>
        cfg.grad_clip >> cfg.batch_size)) {
    throw std::runtime_error("model load: bad config line");
  }
  LstmClassifier model(cfg, /*seed=*/0);
  for (auto& layer : model.layers_) {
    copy_into(layer.weights(), read_matrix(is), "lstm weights");
    copy_into(layer.bias(), read_matrix(is), "lstm bias");
  }
  copy_into(model.head_.weights(), read_matrix(is), "head weights");
  copy_into(model.head_.bias(), read_matrix(is), "head bias");
  model.rebuild_packs();  // the batched kernels read cached packed weights
  return model;
}

void LstmClassifier::save_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("model save: cannot open " + path);
  save(os);
}

LstmClassifier LstmClassifier::load_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("model load: cannot open " + path);
  return load(is);
}

}  // namespace trajkit::nn
