// Quantized serving image of an LstmClassifier, plus the QuantGate check
// that decides whether it may serve at all.
//
// QuantizedLstm is inference-only: it is built *from* a trained fp64
// classifier (never trained itself) by `quantize()`, which
//
//  1. quantizes each layer's weight matrix per gate, symmetric, int8 or
//     int16, with the input and recurrent column halves scaled separately
//     (kernels/rnn_quant.hpp explains why), and
//  2. runs a calibration pass over held-out trajectories through the fp64
//     reference layers to fix the static int8 activation scales: sx for each
//     layer's input stream, sh for its recurrent state.  Max-abs reduction is
//     order-free, so calibration is bit-identical for any thread count.
//
// The dense head stays in fp64 (one dot product per sequence — nothing to
// win) and runs over the quant lane's final hidden state.
//
// The quant lane is NOT bit-identical to the fp64 oracle — int8 rounding and
// the polynomial activations both perturb the logit.  quant_gate_check()
// therefore asserts the *decision contract* on a calibration set: thresholded
// verdicts must agree exactly and the worst logit delta must stay under a
// bound.  Serving (serve/service.hpp MotionPolicy) arms the quantized model
// only when the gate passes and falls back to fp64 per model otherwise.
//
// Persistence: the packed integer image (not the fp64 weights) rides the
// usual CRC-framed durable container ("quant_lstm") and the ArtifactStore
// epoch path via ArtifactCodec<QuantizedLstm>, so followers adopt quantized
// artifacts exactly like any other epoch-published model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/durable/artifact_store.hpp"
#include "common/expected.hpp"
#include "nn/classifier.hpp"
#include "nn/kernels/quant.hpp"
#include "nn/kernels/rnn_quant.hpp"

namespace trajkit::nn {

using QuantMode = kernels::QuantMode;

class QuantizedLstm {
 public:
  QuantizedLstm() = default;

  /// Quantize `model` with a calibration pass over `calibration` (held-out
  /// feature sequences; must be non-empty so the activation scales are
  /// data-backed).  Deterministic: same model + same calibration set give a
  /// byte-identical artifact on any thread count.
  static QuantizedLstm quantize(const LstmClassifier& model,
                                const std::vector<FeatureSequence>& calibration,
                                QuantMode mode);

  QuantMode mode() const { return mode_; }
  std::size_t input_dim() const { return input_dim_; }
  std::size_t hidden_dim() const { return hidden_dim_; }
  std::size_t num_layers() const { return layers_.size(); }

  double predict_logit(const FeatureSequence& x) const;
  double predict_proba(const FeatureSequence& x) const;
  int predict(const FeatureSequence& x, double threshold = 0.5) const;

  /// Batch predictions, kernels::kLanes sequences per GEMM panel — the
  /// serving dispatcher feeds one micro-batch (trajectories from *different*
  /// requests) straight through here.
  std::vector<double> predict_logit_batch(const std::vector<FeatureSequence>& xs) const;
  std::vector<double> predict_proba_batch(const std::vector<FeatureSequence>& xs) const;

  /// Text stream / durable-file persistence of the packed integer image
  /// (same container pattern as the fp64 models; tag "quant_lstm").
  void save(std::ostream& os) const;
  static Expected<QuantizedLstm, std::string> try_load(std::istream& is);
  void save_file(const std::string& path) const;
  static Expected<QuantizedLstm, std::string> try_load_file(const std::string& path);

 private:
  using AlignedBytes =
      std::vector<std::int8_t, kernels::AlignedAllocator<std::int8_t>>;

  struct Layer {
    std::size_t input = 0;
    std::size_t hidden = 0;
    AlignedBytes wx;  ///< packed quant image of W[:, :input]
    AlignedBytes wh;  ///< packed quant image of W[:, input:]
    /// Per-row coefficient sums of each pack (int8 mode only): derived from
    /// the packed image after quantize/load — never serialized — for the
    /// GEMM's offset-binary activation correction.
    std::vector<std::int64_t> wx_row_sums;
    std::vector<std::int64_t> wh_row_sums;
    std::vector<double> bias;
    double sw_x[4] = {1, 1, 1, 1};
    double sw_h[4] = {1, 1, 1, 1};
    double sx = 1.0;
    double sh = 1.0;
  };

  kernels::QuantLstmLayerView view_of(const Layer& l) const;
  static void derive_row_sums(Layer& l, QuantMode mode);
  void predict_logit_group(const FeatureSequence* const* xs, std::size_t batch,
                           double* logits) const;

  QuantMode mode_ = QuantMode::kInt16;
  std::size_t input_dim_ = 0;
  std::size_t hidden_dim_ = 0;
  std::vector<Layer> layers_;
  std::vector<double> head_w_;
  double head_b_ = 0.0;
};

/// Outcome of the fp64-vs-quant decision-contract check.
struct QuantGateReport {
  bool pass = false;
  std::size_t checked = 0;
  std::size_t disagreements = 0;        ///< thresholded verdict mismatches
  double max_abs_logit_delta = 0.0;     ///< worst |logit_fp64 - logit_quant|
  double logit_delta_bound = 0.0;
  double threshold = 0.5;
  /// FNV-1a over the paired (fp64, quant) verdict bits — equal-verdict
  /// streams from independent runs digest identically, so benches can gate
  /// on one number.
  std::uint64_t verdict_checksum = 0;
};

/// Run the gate on a calibration set.  Pass requires zero verdict
/// disagreements at `threshold` AND max logit delta <= `logit_delta_bound`
/// over a non-empty set.
QuantGateReport quant_gate_check(const LstmClassifier& ref,
                                 const QuantizedLstm& quant,
                                 const std::vector<FeatureSequence>& calibration,
                                 double logit_delta_bound,
                                 double threshold = 0.5);

}  // namespace trajkit::nn

namespace trajkit::durable {

/// Quantized-LSTM artifacts for ArtifactStore::open/publish: the payload is
/// the model's own stream format (save/try_load), so quantized serving
/// images ride the same epoch files + durable CURRENT as every other model.
template <>
struct ArtifactCodec<nn::QuantizedLstm> {
  using Value = nn::QuantizedLstm;
  static void encode(const nn::QuantizedLstm& value, std::ostream& os) {
    value.save(os);
  }
  static Expected<Value, std::string> decode(std::istream& is) {
    return nn::QuantizedLstm::try_load(is);
  }
};

}  // namespace trajkit::durable
