#include "nn/gru.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace trajkit::nn {

GruLayer::GruLayer(std::size_t input_dim, std::size_t hidden_dim, Rng& rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      w_gates_(2 * hidden_dim, input_dim + hidden_dim),
      b_gates_(2 * hidden_dim, 1),
      w_nx_(hidden_dim, input_dim),
      w_nh_(hidden_dim, hidden_dim),
      b_nx_(hidden_dim, 1),
      b_nh_(hidden_dim, 1),
      dw_gates_(2 * hidden_dim, input_dim + hidden_dim),
      db_gates_(2 * hidden_dim, 1),
      dw_nx_(hidden_dim, input_dim),
      dw_nh_(hidden_dim, hidden_dim),
      db_nx_(hidden_dim, 1),
      db_nh_(hidden_dim, 1) {
  if (input_dim == 0 || hidden_dim == 0) {
    throw std::invalid_argument("GruLayer: dims must be positive");
  }
  w_gates_.init_glorot(rng);
  w_nx_.init_glorot(rng);
  w_nh_.init_glorot(rng);
}

GruTrace GruLayer::forward(const std::vector<double>& xs, std::size_t steps) const {
  if (xs.size() != steps * input_dim_ || steps == 0) {
    throw std::invalid_argument("GruLayer::forward: input size mismatch");
  }
  const std::size_t H = hidden_dim_;
  const std::size_t I = input_dim_;
  GruTrace tr;
  tr.steps = steps;
  tr.inputs = xs;
  tr.r_gate.assign(steps * H, 0.0);
  tr.z_gate.assign(steps * H, 0.0);
  tr.n_cand.assign(steps * H, 0.0);
  tr.nh_pre.assign(steps * H, 0.0);
  tr.hiddens.assign(steps * H, 0.0);

  std::vector<double> zin(I + H, 0.0);
  std::vector<double> gates(2 * H, 0.0);
  std::vector<double> n_pre(H, 0.0);

  for (std::size_t t = 0; t < steps; ++t) {
    const double* h_prev = t > 0 ? tr.hiddens.data() + (t - 1) * H : nullptr;
    std::memcpy(zin.data(), xs.data() + t * I, I * sizeof(double));
    if (h_prev) {
      std::memcpy(zin.data() + I, h_prev, H * sizeof(double));
    } else {
      std::memset(zin.data() + I, 0, H * sizeof(double));
    }
    for (std::size_t k = 0; k < 2 * H; ++k) gates[k] = b_gates_(k, 0);
    gemv_acc(w_gates_, zin.data(), gates.data());

    double* nh = tr.nh_pre.data() + t * H;
    for (std::size_t k = 0; k < H; ++k) nh[k] = b_nh_(k, 0);
    if (h_prev) gemv_acc(w_nh_, h_prev, nh);

    for (std::size_t k = 0; k < H; ++k) n_pre[k] = b_nx_(k, 0);
    gemv_acc(w_nx_, xs.data() + t * I, n_pre.data());

    double* r = tr.r_gate.data() + t * H;
    double* z = tr.z_gate.data() + t * H;
    double* n = tr.n_cand.data() + t * H;
    double* h = tr.hiddens.data() + t * H;
    for (std::size_t k = 0; k < H; ++k) {
      r[k] = sigmoid(gates[k]);
      z[k] = sigmoid(gates[H + k]);
      n[k] = std::tanh(n_pre[k] + r[k] * nh[k]);
      const double hp = h_prev ? h_prev[k] : 0.0;
      h[k] = (1.0 - z[k]) * n[k] + z[k] * hp;
    }
  }
  return tr;
}

void GruLayer::backward_seq(const GruTrace& trace, const std::vector<double>& dh_seq,
                            std::vector<double>* dx) {
  const std::size_t H = hidden_dim_;
  const std::size_t I = input_dim_;
  const std::size_t steps = trace.steps;
  if (dh_seq.size() != steps * H) {
    throw std::invalid_argument("GruLayer::backward_seq: dh_seq size mismatch");
  }
  if (dx) dx->assign(steps * I, 0.0);

  std::vector<double> dh(dh_seq.end() - static_cast<std::ptrdiff_t>(H), dh_seq.end());
  std::vector<double> dgates(2 * H, 0.0);
  std::vector<double> dn_pre(H, 0.0);
  std::vector<double> dnh(H, 0.0);
  std::vector<double> zin(I + H, 0.0);
  std::vector<double> dzin(I + H, 0.0);
  std::vector<double> dh_prev(H, 0.0);

  for (std::size_t t = steps; t-- > 0;) {
    const double* r = trace.r_gate.data() + t * H;
    const double* z = trace.z_gate.data() + t * H;
    const double* n = trace.n_cand.data() + t * H;
    const double* nh = trace.nh_pre.data() + t * H;
    const double* h_prev = t > 0 ? trace.hiddens.data() + (t - 1) * H : nullptr;
    const double* x = trace.inputs.data() + t * I;

    std::fill(dh_prev.begin(), dh_prev.end(), 0.0);
    for (std::size_t k = 0; k < H; ++k) {
      const double hp = h_prev ? h_prev[k] : 0.0;
      const double dz = dh[k] * (hp - n[k]) * z[k] * (1.0 - z[k]);
      const double dn = dh[k] * (1.0 - z[k]);
      dn_pre[k] = dn * (1.0 - n[k] * n[k]);
      const double dr = dn_pre[k] * nh[k] * r[k] * (1.0 - r[k]);
      dgates[k] = dr;
      dgates[H + k] = dz;
      dnh[k] = dn_pre[k] * r[k];
      dh_prev[k] += dh[k] * z[k];  // direct carry-through
    }

    // Candidate-path parameter gradients.
    rank1_acc(dw_nx_, 1.0, dn_pre.data(), x);
    for (std::size_t k = 0; k < H; ++k) db_nx_(k, 0) += dn_pre[k];
    if (h_prev) rank1_acc(dw_nh_, 1.0, dnh.data(), h_prev);
    for (std::size_t k = 0; k < H; ++k) db_nh_(k, 0) += dnh[k];
    if (dx) {
      gemv_t_acc(w_nx_, dn_pre.data(),
                 dx->data() + t * I);  // dx += W_nx^T dn_pre
    }
    gemv_t_acc(w_nh_, dnh.data(), dh_prev.data());  // dh_prev += W_nh^T dnh

    // Gate-path parameter gradients.
    std::memcpy(zin.data(), x, I * sizeof(double));
    if (h_prev) {
      std::memcpy(zin.data() + I, h_prev, H * sizeof(double));
    } else {
      std::memset(zin.data() + I, 0, H * sizeof(double));
    }
    rank1_acc(dw_gates_, 1.0, dgates.data(), zin.data());
    for (std::size_t k = 0; k < 2 * H; ++k) db_gates_(k, 0) += dgates[k];
    std::fill(dzin.begin(), dzin.end(), 0.0);
    gemv_t_acc(w_gates_, dgates.data(), dzin.data());
    if (dx) {
      for (std::size_t k = 0; k < I; ++k) (*dx)[t * I + k] += dzin[k];
    }
    for (std::size_t k = 0; k < H; ++k) dh_prev[k] += dzin[I + k];

    // Flow to the previous step, plus that step's own injection.
    dh = dh_prev;
    if (t > 0) {
      const double* inject = dh_seq.data() + (t - 1) * H;
      for (std::size_t k = 0; k < H; ++k) dh[k] += inject[k];
    }
  }
}

void GruLayer::zero_grad() {
  dw_gates_.zero();
  db_gates_.zero();
  dw_nx_.zero();
  dw_nh_.zero();
  db_nx_.zero();
  db_nh_.zero();
}

double GruLayer::grad_norm_sq() const {
  return dw_gates_.norm_sq() + db_gates_.norm_sq() + dw_nx_.norm_sq() +
         dw_nh_.norm_sq() + db_nx_.norm_sq() + db_nh_.norm_sq();
}

void GruLayer::scale_grad(double s) {
  for (Matrix* m : {&dw_gates_, &db_gates_, &dw_nx_, &dw_nh_, &db_nx_, &db_nh_}) {
    for (std::size_t i = 0; i < m->size(); ++i) m->data()[i] *= s;
  }
}

}  // namespace trajkit::nn
