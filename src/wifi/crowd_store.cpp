#include "wifi/crowd_store.hpp"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/durable/durable_file.hpp"
#include "common/fault.hpp"

namespace trajkit::wifi {
namespace {

constexpr const char* kSnapshotTag = "crowd_snapshot";
// v2 appends the incremental cell statistics as a trailing record and the
// observed model epoch to the meta record; v3 prefixes every point record
// with its uploader id and appends the provenance grid and the reputation
// book as two more trailing records; v4 appends the observed motion-model
// epoch to the meta record.  v1-v3 snapshots still open (their points
// recover under the anonymous uploader, motion epoch recovers as 0).
constexpr std::uint32_t kSnapshotVersion = 4;
constexpr const char* kJournalTag = "crowd_journal";
constexpr std::size_t kMaxSnapshotPoints = 5'000'000;
constexpr const char* kEpochMarkerPrefix = "#epoch ";
constexpr const char* kMotionEpochMarkerPrefix = "#motion_epoch ";
constexpr const char* kQuarantineMarkerPrefix = "#quarantine ";
constexpr const char* kClearMarkerPrefix = "#clear ";

// Every point the store can hold must fit in one snapshot container (plus
// its meta, cell-stats, provenance and reputation records), or compact()
// would commit a snapshot that open() can never read back — a store that
// bricks itself at its first compaction.
static_assert(kMaxSnapshotPoints + 4 <= durable::kMaxDurableRecords,
              "crowd snapshot capacity exceeds the durable record cap");

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

// Strict "<prefix><decimal u64>" match, no sign, no trailing garbage.
bool parse_marker_value(const std::string& payload, const char* prefix,
                        std::uint64_t* value) {
  const std::size_t prefix_len = std::strlen(prefix);
  if (payload.compare(0, prefix_len, prefix) != 0) return false;
  const std::string digits = payload.substr(prefix_len);
  if (digits.empty() || digits.size() > 20) return false;
  std::uint64_t v = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *value = v;
  return true;
}

}  // namespace

std::string CrowdStore::snapshot_path(const std::string& dir) {
  return dir + "/crowd.snapshot";
}

std::string CrowdStore::journal_path(const std::string& dir) {
  return dir + "/crowd.journal";
}

const char* CrowdStore::journal_tag() { return kJournalTag; }

std::string CrowdStore::encode_point(const ReferencePoint& point) {
  std::string out = format_double(point.pos.east);
  out += ' ';
  out += format_double(point.pos.north);
  out += ' ';
  out += std::to_string(point.traj_id);
  out += ' ';
  out += std::to_string(point.scan.size());
  for (const auto& obs : point.scan) {
    out += ' ';
    out += std::to_string(obs.mac);
    out += ' ';
    out += std::to_string(obs.rssi_dbm);
  }
  return out;
}

Expected<ReferencePoint, std::string> CrowdStore::decode_point(
    const std::string& line) {
  using Result = Expected<ReferencePoint, std::string>;
  std::istringstream is(line);
  ReferencePoint p;
  std::size_t scan_size = 0;
  if (!(is >> p.pos.east >> p.pos.north >> p.traj_id >> scan_size)) {
    return Result::failure("crowd point: bad record head");
  }
  if (scan_size > kMaxScanAps) {
    return Result::failure("crowd point: oversized scan");
  }
  p.scan.resize(scan_size);
  for (auto& obs : p.scan) {
    if (!(is >> obs.mac >> obs.rssi_dbm)) {
      return Result::failure("crowd point: truncated scan");
    }
  }
  auto valid = validate_reference_point(p);
  if (!valid) return Result::failure(valid.error());
  return Result(std::move(p));
}

std::string CrowdStore::encode_epoch_marker(std::uint64_t epoch) {
  return kEpochMarkerPrefix + std::to_string(epoch);
}

std::string CrowdStore::encode_motion_epoch_marker(std::uint64_t epoch) {
  return kMotionEpochMarkerPrefix + std::to_string(epoch);
}

std::string CrowdStore::encode_quarantine_marker(UploaderId uploader) {
  return kQuarantineMarkerPrefix + std::to_string(uploader);
}

std::string CrowdStore::encode_clear_marker(UploaderId uploader) {
  return kClearMarkerPrefix + std::to_string(uploader);
}

Expected<CrowdStore::ControlFrame, std::string> CrowdStore::parse_control(
    const std::string& payload) {
  using Result = Expected<ControlFrame, std::string>;
  ControlFrame frame;
  if (parse_marker_value(payload, kEpochMarkerPrefix, &frame.value)) {
    frame.kind = ControlFrame::Kind::kEpoch;
    return Result(frame);
  }
  if (parse_marker_value(payload, kMotionEpochMarkerPrefix, &frame.value)) {
    frame.kind = ControlFrame::Kind::kMotionEpoch;
    return Result(frame);
  }
  if (parse_marker_value(payload, kQuarantineMarkerPrefix, &frame.value)) {
    frame.kind = ControlFrame::Kind::kQuarantine;
    return Result(frame);
  }
  if (parse_marker_value(payload, kClearMarkerPrefix, &frame.value)) {
    frame.kind = ControlFrame::Kind::kClear;
    return Result(frame);
  }
  return Result::failure("unknown control frame");
}

bool CrowdStore::is_epoch_marker(const std::string& payload, std::uint64_t* epoch) {
  std::uint64_t value = 0;
  if (!parse_marker_value(payload, kEpochMarkerPrefix, &value)) return false;
  if (epoch != nullptr) *epoch = value;
  return true;
}

Expected<std::unique_ptr<CrowdStore>, std::string> CrowdStore::open(
    const std::string& dir, bool sync_each_append, const Tuning& tuning) {
  using Result = Expected<std::unique_ptr<CrowdStore>, std::string>;

  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Result::failure("crowd store: cannot create " + dir + ": " +
                           std::strerror(errno));
  }

  std::unique_ptr<CrowdStore> store(new CrowdStore);
  store->dir_ = dir;
  // Tuning lands before replay: the journal tail below is rescored under
  // exactly these parameters.
  store->set_reputation_params(tuning.reputation);
  store->set_aggregation_params(tuning.aggregation);
  store->set_rate_policy(tuning.rate_policy);

  // 1. The snapshot: the compacted prefix of the dataset.  Absent on a fresh
  // store; otherwise it must parse — it was committed atomically, so damage
  // here is real corruption, not a crash artifact.
  std::uint64_t snapshot_next_seq = 0;
  const std::string snap = snapshot_path(dir);
  // A crash inside a previous snapshot commit can strand `crowd.snapshot.tmp`
  // forever (the journal cleans up its own temp in Journal::open).
  durable::remove_stale_tmp(snap);
  struct stat st {};
  if (::stat(snap.c_str(), &st) == 0) {
    auto contents = durable::read_durable_file(snap, kSnapshotTag);
    if (!contents) return Result::failure("crowd store: " + contents.error());
    const std::uint32_t version = contents.value().version;
    if (version < 1 || version > kSnapshotVersion) {
      return Result::failure("crowd store: unsupported snapshot version " +
                             std::to_string(version));
    }
    const auto& records = contents.value().records;
    if (records.empty()) {
      return Result::failure("crowd store: snapshot missing meta record");
    }
    // v1 layout: meta "next_seq point_count", then the points.
    // v2 layout: meta "next_seq point_count observed_epoch", then the points,
    // then one trailing cell-statistics record.
    // v3 layout: the v2 meta, then "<uploader> <point>" records, then three
    // trailing records — cell statistics, provenance grid, reputation book.
    // v4 layout: v3 with "observed_motion_epoch" appended to the meta record.
    const std::size_t overhead = version >= 3 ? 4 : version >= 2 ? 2 : 1;
    std::istringstream meta(records[0]);
    std::size_t point_count = 0;
    if (!(meta >> snapshot_next_seq >> point_count) ||
        point_count != records.size() - overhead ||
        point_count > kMaxSnapshotPoints) {
      return Result::failure("crowd store: bad snapshot meta record");
    }
    if (version >= 2 && !(meta >> store->observed_epoch_)) {
      return Result::failure("crowd store: v2 snapshot meta missing epoch");
    }
    if (version >= 4 && !(meta >> store->observed_motion_epoch_)) {
      return Result::failure("crowd store: v4 snapshot meta missing motion epoch");
    }
    store->points_.reserve(point_count);
    store->uploaders_.reserve(point_count);
    for (std::size_t i = 1; i <= point_count; ++i) {
      UploaderId uploader = kAnonymousUploader;
      std::string body = records[i];
      if (version >= 3) {
        std::istringstream rec(records[i]);
        if (!(rec >> uploader) || !std::getline(rec, body)) {
          return Result::failure("crowd store: snapshot record " +
                                 std::to_string(i - 1) + ": bad uploader prefix");
        }
      }
      auto point = decode_point(body);
      if (!point) {
        return Result::failure("crowd store: snapshot record " +
                               std::to_string(i - 1) + ": " + point.error());
      }
      store->points_.push_back(std::move(point).value());
      store->uploaders_.push_back(uploader);
    }
    if (version >= 2) {
      auto grid = CellStatsGrid::deserialize(records[point_count + 1]);
      if (!grid) return Result::failure("crowd store: " + grid.error());
      if (grid.value().point_count() != point_count) {
        return Result::failure(
            "crowd store: snapshot cell stats disagree with point count");
      }
      store->cell_stats_ = std::move(grid).value();
    } else {
      // Pre-cell-stats snapshot: derive the grid once on upgrade.
      for (const auto& point : store->points_) store->cell_stats_.add(point);
    }
    if (version >= 3) {
      auto prov = ProvenanceGrid::deserialize(records[point_count + 2]);
      if (!prov) return Result::failure("crowd store: " + prov.error());
      if (prov.value().point_count() != point_count) {
        return Result::failure(
            "crowd store: snapshot provenance disagrees with point count");
      }
      store->provenance_ = std::move(prov).value();
      auto book = ReputationBook::deserialize(records[point_count + 3]);
      if (!book) return Result::failure("crowd store: " + book.error());
      store->reputation_ = std::move(book).value();
    } else {
      // Pre-provenance snapshot: every folded point is anonymous, and no
      // reputation history survives (there were no identities to score).
      for (const auto& point : store->points_) {
        store->provenance_.add(point, kAnonymousUploader);
      }
    }
  }
  store->snapshot_count_ = store->points_.size();
  store->open_stats_.snapshot_points = store->points_.size();

  // 2. The journal: every accepted scan since that snapshot.  open() already
  // truncated any torn tail; replay skips records the snapshot has folded in
  // (possible when a crash hit compact() between its two stages).  Replay
  // shares ingest_state with the live append path, so the recovered
  // provenance and reputation state is bitwise what the crashed process had.
  auto journal = durable::Journal::open(journal_path(dir), kJournalTag,
                                        snapshot_next_seq, sync_each_append);
  if (!journal) return Result::failure("crowd store: " + journal.error());
  store->journal_ = std::move(journal).value();
  store->open_stats_.truncated_bytes = store->journal_->recovery().truncated_bytes;
  for (const auto& record : store->journal_->recovery().records) {
    if (record.seq < snapshot_next_seq) {
      ++store->open_stats_.skipped_stale;
      continue;
    }
    if (!record.payload.empty() && record.payload[0] == '#') {
      auto frame = parse_control(record.payload);
      if (!frame) {
        return Result::failure("crowd store: journal seq " +
                               std::to_string(record.seq) +
                               ": unknown control frame");
      }
      store->apply_control(frame.value());
      ++store->open_stats_.replayed_records;
      continue;
    }
    auto point = decode_point(record.payload);
    if (!point) {
      return Result::failure("crowd store: journal seq " +
                             std::to_string(record.seq) + ": " + point.error());
    }
    store->ingest_state(point.value(), record.uploader);
    ++store->open_stats_.replayed_records;
  }
  store->journaled_ = store->open_stats_.replayed_records;
  return Result(std::move(store));
}

void CrowdStore::ingest_state(const ReferencePoint& point, UploaderId uploader) {
  // Score against the consensus the *other* witnesses formed before this
  // point lands — an upload never vouches for itself, and the agreement each
  // append earns is a pure function of the ingestion prefix (replay-safe).
  double agree_sum = 0.0;
  std::size_t scored = 0;
  if (uploader != kAnonymousUploader) {
    const RobustCellAggregator agg(cell_stats_, provenance_, agg_params_);
    for (const auto& obs : point.scan) {
      double consensus = 0.0;
      if (!agg.consensus_excluding(point.pos, obs.mac, uploader, &consensus)) {
        continue;
      }
      agree_sum += ReputationBook::agreement(obs.rssi_dbm - consensus, rep_params_);
      ++scored;
    }
  }
  cell_stats_.add(point);
  provenance_.add(point, uploader);
  points_.push_back(point);
  uploaders_.push_back(uploader);
  if (scored > 0) {
    reputation_.observe(uploader, agree_sum / static_cast<double>(scored),
                        rep_params_);
  }
}

void CrowdStore::apply_control(const ControlFrame& frame) {
  switch (frame.kind) {
    case ControlFrame::Kind::kEpoch:
      if (frame.value > observed_epoch_) observed_epoch_ = frame.value;
      break;
    case ControlFrame::Kind::kMotionEpoch:
      if (frame.value > observed_motion_epoch_) observed_motion_epoch_ = frame.value;
      break;
    case ControlFrame::Kind::kQuarantine:
      reputation_.quarantine(frame.value);
      break;
    case ControlFrame::Kind::kClear:
      reputation_.clear(frame.value);
      break;
  }
}

Expected<std::uint64_t, std::string> CrowdStore::append(const ReferencePoint& point,
                                                        UploaderId uploader) {
  using Result = Expected<std::uint64_t, std::string>;
  if (points_.size() >= kMaxSnapshotPoints) {
    return Result::failure("crowd store: at capacity (" +
                           std::to_string(kMaxSnapshotPoints) + " points)");
  }
  auto valid = validate_reference_point(point);
  if (!valid) return Result::failure("crowd store: " + valid.error());
  // Rate admission runs only here, never at replay — a journaled record was
  // already admitted once, and re-litigating it on recovery could refuse to
  // replay history the store durably accepted.
  auto admitted = rate_limiter_.admit(uploader, points_.size());
  if (!admitted) return Result::failure("crowd store: " + admitted.error());
  auto seq = journal_->append(encode_point(point), uploader);
  if (!seq) return Result::failure("crowd store: " + seq.error());
  // Only after the journal accepted (and fsynced) the record does it become
  // visible — what callers can query is always recoverable.
  ingest_state(point, uploader);
  ++journaled_;
  return seq;
}

Expected<std::uint64_t, std::string> CrowdStore::append_control(
    const std::string& payload) {
  using Result = Expected<std::uint64_t, std::string>;
  auto frame = parse_control(payload);
  if (!frame) return Result::failure("crowd store: " + frame.error());
  auto seq = journal_->append(payload);
  if (!seq) return Result::failure("crowd store: " + seq.error());
  apply_control(frame.value());
  ++journaled_;
  return seq;
}

Expected<std::uint64_t, std::string> CrowdStore::append_epoch_marker(
    std::uint64_t epoch) {
  return append_control(encode_epoch_marker(epoch));
}

Expected<std::uint64_t, std::string> CrowdStore::append_motion_epoch_marker(
    std::uint64_t epoch) {
  return append_control(encode_motion_epoch_marker(epoch));
}

Expected<std::uint64_t, std::string> CrowdStore::append_quarantine_marker(
    UploaderId uploader) {
  return append_control(encode_quarantine_marker(uploader));
}

Expected<std::uint64_t, std::string> CrowdStore::append_clear_marker(
    UploaderId uploader) {
  return append_control(encode_clear_marker(uploader));
}

std::vector<ReferencePoint> CrowdStore::trusted_points() const {
  std::vector<ReferencePoint> out;
  out.reserve(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (!reputation_.is_quarantined(uploaders_[i])) out.push_back(points_[i]);
  }
  return out;
}

std::size_t CrowdStore::quarantined_point_count() const {
  std::size_t held = 0;
  for (const UploaderId uploader : uploaders_) {
    if (reputation_.is_quarantined(uploader)) ++held;
  }
  return held;
}

void CrowdStore::set_aggregation_params(const RobustAggregationParams& params) {
  agg_params_ = params;
  // Clamp into the aggregator's domain so ingest scoring can construct one
  // unconditionally; >= 0.5 is already "median" and negatives mean "off".
  if (!(agg_params_.trim_fraction >= 0.0)) agg_params_.trim_fraction = 0.0;
  if (agg_params_.trim_fraction > 0.5) agg_params_.trim_fraction = 0.5;
}

void CrowdStore::set_rate_policy(const UploaderRatePolicy& policy) {
  rate_limiter_ = UploaderRateLimiter(policy);
}

Expected<bool, std::string> CrowdStore::compact() {
  using Result = Expected<bool, std::string>;
  const std::uint64_t next_seq = journal_->next_seq();

  // The cell statistics and the provenance grid were maintained incrementally
  // on every append, so compaction serialises the live structures instead of
  // recomputing them.  The debug flag recomputes anyway and demands bitwise
  // equality — any drift between the incremental and from-scratch paths fails
  // loudly here rather than silently skewing the online model layer.
  const std::string cell_stats_text = cell_stats_.serialize();
  const std::string provenance_text = provenance_.serialize();
  if (verify_cell_stats_) {
    CellStatsGrid fresh(cell_stats_.cell_size_m());
    for (const auto& point : points_) fresh.add(point);
    if (fresh.serialize() != cell_stats_text) {
      return Result::failure(
          "crowd store: incremental cell stats diverged from recompute");
    }
    ProvenanceGrid fresh_prov(provenance_.cell_size_m());
    for (std::size_t i = 0; i < points_.size(); ++i) {
      fresh_prov.add(points_[i], uploaders_[i]);
    }
    if (fresh_prov.serialize() != provenance_text) {
      return Result::failure(
          "crowd store: incremental provenance diverged from recompute");
    }
  }

  // Stage 1: commit a fresh snapshot of everything, stamped with the journal
  // seq it covers and the highest observed model epoch.  Atomic replace — a
  // crash leaves the old snapshot.  Quarantined uploaders' points are folded
  // like any others: storage is not judgement, and a later "#clear" must
  // find them intact.
  durable::DurableWriter writer(kSnapshotTag, kSnapshotVersion);
  writer.add_record(std::to_string(next_seq) + ' ' + std::to_string(points_.size()) +
                    ' ' + std::to_string(observed_epoch_) + ' ' +
                    std::to_string(observed_motion_epoch_));
  for (std::size_t i = 0; i < points_.size(); ++i) {
    writer.add_record(std::to_string(uploaders_[i]) + ' ' + encode_point(points_[i]));
  }
  writer.add_record(cell_stats_text);
  writer.add_record(provenance_text);
  writer.add_record(reputation_.serialize());
  auto committed = writer.commit(snapshot_path(dir_));
  if (!committed) return Result::failure("crowd store: " + committed.error());

  // The gap the recovery tests aim at: snapshot covers the journal, journal
  // still holds the (now stale) records.  Replay's seq check makes this a
  // consistent state, so crashing here loses nothing and duplicates nothing.
  if (global_faults().should_fail_seq(kFaultStoreCompact,
                                      durable::path_fault_key(snapshot_path(dir_)))) {
    return Result::failure("crowd store: injected fault between compact stages");
  }

  // Stage 2: reset the journal to start where the snapshot ends.
  auto reset = journal_->reset(next_seq);
  if (!reset) return Result::failure("crowd store: " + reset.error());
  snapshot_count_ = points_.size();
  journaled_ = 0;
  return Result(true);
}

}  // namespace trajkit::wifi
