#include "wifi/crowd_store.hpp"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/durable/durable_file.hpp"
#include "common/fault.hpp"
#include "wifi/validate.hpp"

namespace trajkit::wifi {
namespace {

constexpr const char* kSnapshotTag = "crowd_snapshot";
// v2 appends the incremental cell statistics as a trailing record and the
// observed model epoch to the meta record; v1 snapshots still open.
constexpr std::uint32_t kSnapshotVersion = 2;
constexpr const char* kJournalTag = "crowd_journal";
constexpr std::size_t kMaxSnapshotPoints = 5'000'000;
constexpr const char* kEpochMarkerPrefix = "#epoch ";

// Every point the store can hold must fit in one snapshot container (plus
// its meta and cell-stats records), or compact() would commit a snapshot
// that open() can never read back — a store that bricks itself at its first
// compaction.
static_assert(kMaxSnapshotPoints + 2 <= durable::kMaxDurableRecords,
              "crowd snapshot capacity exceeds the durable record cap");

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string CrowdStore::snapshot_path(const std::string& dir) {
  return dir + "/crowd.snapshot";
}

std::string CrowdStore::journal_path(const std::string& dir) {
  return dir + "/crowd.journal";
}

const char* CrowdStore::journal_tag() { return kJournalTag; }

std::string CrowdStore::encode_point(const ReferencePoint& point) {
  std::string out = format_double(point.pos.east);
  out += ' ';
  out += format_double(point.pos.north);
  out += ' ';
  out += std::to_string(point.traj_id);
  out += ' ';
  out += std::to_string(point.scan.size());
  for (const auto& obs : point.scan) {
    out += ' ';
    out += std::to_string(obs.mac);
    out += ' ';
    out += std::to_string(obs.rssi_dbm);
  }
  return out;
}

Expected<ReferencePoint, std::string> CrowdStore::decode_point(
    const std::string& line) {
  using Result = Expected<ReferencePoint, std::string>;
  std::istringstream is(line);
  ReferencePoint p;
  std::size_t scan_size = 0;
  if (!(is >> p.pos.east >> p.pos.north >> p.traj_id >> scan_size)) {
    return Result::failure("crowd point: bad record head");
  }
  if (scan_size > kMaxScanAps) {
    return Result::failure("crowd point: oversized scan");
  }
  p.scan.resize(scan_size);
  for (auto& obs : p.scan) {
    if (!(is >> obs.mac >> obs.rssi_dbm)) {
      return Result::failure("crowd point: truncated scan");
    }
  }
  auto valid = validate_reference_point(p);
  if (!valid) return Result::failure(valid.error());
  return Result(std::move(p));
}

std::string CrowdStore::encode_epoch_marker(std::uint64_t epoch) {
  return kEpochMarkerPrefix + std::to_string(epoch);
}

bool CrowdStore::is_epoch_marker(const std::string& payload, std::uint64_t* epoch) {
  const std::size_t prefix_len = std::strlen(kEpochMarkerPrefix);
  if (payload.compare(0, prefix_len, kEpochMarkerPrefix) != 0) return false;
  const std::string digits = payload.substr(prefix_len);
  if (digits.empty() || digits.size() > 20) return false;
  std::uint64_t value = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (epoch != nullptr) *epoch = value;
  return true;
}

Expected<std::unique_ptr<CrowdStore>, std::string> CrowdStore::open(
    const std::string& dir, bool sync_each_append) {
  using Result = Expected<std::unique_ptr<CrowdStore>, std::string>;

  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Result::failure("crowd store: cannot create " + dir + ": " +
                           std::strerror(errno));
  }

  std::unique_ptr<CrowdStore> store(new CrowdStore);
  store->dir_ = dir;

  // 1. The snapshot: the compacted prefix of the dataset.  Absent on a fresh
  // store; otherwise it must parse — it was committed atomically, so damage
  // here is real corruption, not a crash artifact.
  std::uint64_t snapshot_next_seq = 0;
  const std::string snap = snapshot_path(dir);
  // A crash inside a previous snapshot commit can strand `crowd.snapshot.tmp`
  // forever (the journal cleans up its own temp in Journal::open).
  durable::remove_stale_tmp(snap);
  struct stat st {};
  if (::stat(snap.c_str(), &st) == 0) {
    auto contents = durable::read_durable_file(snap, kSnapshotTag);
    if (!contents) return Result::failure("crowd store: " + contents.error());
    const std::uint32_t version = contents.value().version;
    if (version < 1 || version > kSnapshotVersion) {
      return Result::failure("crowd store: unsupported snapshot version " +
                             std::to_string(version));
    }
    const auto& records = contents.value().records;
    if (records.empty()) {
      return Result::failure("crowd store: snapshot missing meta record");
    }
    // v1 layout: meta "next_seq point_count", then the points.
    // v2 layout: meta "next_seq point_count observed_epoch", then the points,
    // then one trailing cell-statistics record.
    const std::size_t overhead = version >= 2 ? 2 : 1;
    std::istringstream meta(records[0]);
    std::size_t point_count = 0;
    if (!(meta >> snapshot_next_seq >> point_count) ||
        point_count != records.size() - overhead ||
        point_count > kMaxSnapshotPoints) {
      return Result::failure("crowd store: bad snapshot meta record");
    }
    if (version >= 2 && !(meta >> store->observed_epoch_)) {
      return Result::failure("crowd store: v2 snapshot meta missing epoch");
    }
    store->points_.reserve(point_count);
    for (std::size_t i = 1; i <= point_count; ++i) {
      auto point = decode_point(records[i]);
      if (!point) {
        return Result::failure("crowd store: snapshot record " +
                               std::to_string(i - 1) + ": " + point.error());
      }
      store->points_.push_back(std::move(point).value());
    }
    if (version >= 2) {
      auto grid = CellStatsGrid::deserialize(records.back());
      if (!grid) return Result::failure("crowd store: " + grid.error());
      if (grid.value().point_count() != point_count) {
        return Result::failure(
            "crowd store: snapshot cell stats disagree with point count");
      }
      store->cell_stats_ = std::move(grid).value();
    } else {
      // Pre-cell-stats snapshot: derive the grid once on upgrade.
      for (const auto& point : store->points_) store->cell_stats_.add(point);
    }
  }
  store->snapshot_count_ = store->points_.size();
  store->open_stats_.snapshot_points = store->points_.size();

  // 2. The journal: every accepted scan since that snapshot.  open() already
  // truncated any torn tail; replay skips records the snapshot has folded in
  // (possible when a crash hit compact() between its two stages).
  auto journal = durable::Journal::open(journal_path(dir), kJournalTag,
                                        snapshot_next_seq, sync_each_append);
  if (!journal) return Result::failure("crowd store: " + journal.error());
  store->journal_ = std::move(journal).value();
  store->open_stats_.truncated_bytes = store->journal_->recovery().truncated_bytes;
  for (const auto& record : store->journal_->recovery().records) {
    if (record.seq < snapshot_next_seq) {
      ++store->open_stats_.skipped_stale;
      continue;
    }
    if (!record.payload.empty() && record.payload[0] == '#') {
      std::uint64_t epoch = 0;
      if (!is_epoch_marker(record.payload, &epoch)) {
        return Result::failure("crowd store: journal seq " +
                               std::to_string(record.seq) +
                               ": unknown control frame");
      }
      if (epoch > store->observed_epoch_) store->observed_epoch_ = epoch;
      ++store->open_stats_.replayed_records;
      continue;
    }
    auto point = decode_point(record.payload);
    if (!point) {
      return Result::failure("crowd store: journal seq " +
                             std::to_string(record.seq) + ": " + point.error());
    }
    store->cell_stats_.add(point.value());
    store->points_.push_back(std::move(point).value());
    ++store->open_stats_.replayed_records;
  }
  store->journaled_ = store->open_stats_.replayed_records;
  return Result(std::move(store));
}

Expected<std::uint64_t, std::string> CrowdStore::append(const ReferencePoint& point) {
  using Result = Expected<std::uint64_t, std::string>;
  if (points_.size() >= kMaxSnapshotPoints) {
    return Result::failure("crowd store: at capacity (" +
                           std::to_string(kMaxSnapshotPoints) + " points)");
  }
  auto valid = validate_reference_point(point);
  if (!valid) return Result::failure("crowd store: " + valid.error());
  auto seq = journal_->append(encode_point(point));
  if (!seq) return Result::failure("crowd store: " + seq.error());
  // Only after the journal accepted (and fsynced) the record does it become
  // visible — what callers can query is always recoverable.
  points_.push_back(point);
  cell_stats_.add(point);
  ++journaled_;
  return seq;
}

Expected<std::uint64_t, std::string> CrowdStore::append_epoch_marker(
    std::uint64_t epoch) {
  using Result = Expected<std::uint64_t, std::string>;
  auto seq = journal_->append(encode_epoch_marker(epoch));
  if (!seq) return Result::failure("crowd store: " + seq.error());
  if (epoch > observed_epoch_) observed_epoch_ = epoch;
  ++journaled_;
  return seq;
}

Expected<bool, std::string> CrowdStore::compact() {
  using Result = Expected<bool, std::string>;
  const std::uint64_t next_seq = journal_->next_seq();

  // The cell statistics were maintained incrementally on every append, so
  // compaction serialises the live grid instead of recomputing it.  The
  // debug flag recomputes anyway and demands bitwise equality — any drift
  // between the incremental and from-scratch paths fails loudly here rather
  // than silently skewing the online model layer.
  const std::string cell_stats_text = cell_stats_.serialize();
  if (verify_cell_stats_) {
    CellStatsGrid fresh(cell_stats_.cell_size_m());
    for (const auto& point : points_) fresh.add(point);
    if (fresh.serialize() != cell_stats_text) {
      return Result::failure(
          "crowd store: incremental cell stats diverged from recompute");
    }
  }

  // Stage 1: commit a fresh snapshot of everything, stamped with the journal
  // seq it covers and the highest observed model epoch.  Atomic replace — a
  // crash leaves the old snapshot.
  durable::DurableWriter writer(kSnapshotTag, kSnapshotVersion);
  writer.add_record(std::to_string(next_seq) + ' ' + std::to_string(points_.size()) +
                    ' ' + std::to_string(observed_epoch_));
  for (const auto& point : points_) writer.add_record(encode_point(point));
  writer.add_record(cell_stats_text);
  auto committed = writer.commit(snapshot_path(dir_));
  if (!committed) return Result::failure("crowd store: " + committed.error());

  // The gap the recovery tests aim at: snapshot covers the journal, journal
  // still holds the (now stale) records.  Replay's seq check makes this a
  // consistent state, so crashing here loses nothing and duplicates nothing.
  if (global_faults().should_fail_seq(kFaultStoreCompact,
                                      durable::path_fault_key(snapshot_path(dir_)))) {
    return Result::failure("crowd store: injected fault between compact stages");
  }

  // Stage 2: reset the journal to start where the snapshot ends.
  auto reset = journal_->reset(next_seq);
  if (!reset) return Result::failure("crowd store: " + reset.error());
  snapshot_count_ = points_.size();
  journaled_ = 0;
  return Result(true);
}

}  // namespace trajkit::wifi
