#include "wifi/rpd.hpp"

#include <cmath>
#include <stdexcept>

namespace trajkit::wifi {

RpdEstimator::RpdEstimator(const ReferenceIndex& index, RpdParams params)
    : index_(&index), params_(params), cache_(index.size()) {
  if (params_.counting_radius_m <= 0.0) {
    throw std::invalid_argument("RpdEstimator: counting radius must be positive");
  }
  if (params_.theta2_base <= 0.0 || params_.theta2_base >= 1.0) {
    throw std::invalid_argument("RpdEstimator: theta2 base must be in (0, 1)");
  }
  if (params_.rssi_tolerance_db < 0) {
    throw std::invalid_argument("RpdEstimator: tolerance must be non-negative");
  }
}

const RpdEstimator::PointStats& RpdEstimator::stats(std::size_t h) const {
  PointStats& entry = cache_[h];
  // Fast path: entry already published (acquire pairs with the release below).
  if (entry.ready.load(std::memory_order_acquire)) return entry;
  std::lock_guard<std::mutex> lock(stripes_[h % stripes_.size()]);
  if (entry.ready.load(std::memory_order_relaxed)) return entry;
  const auto nbrs = index_->within((*index_)[h].pos, params_.counting_radius_m);
  entry.neighbour_count = nbrs.size();
  for (std::size_t q : nbrs) {
    for (const auto& obs : (*index_)[q].scan) {
      ++entry.histograms[obs.mac][obs.rssi_dbm];
    }
  }
  entry.ready.store(true, std::memory_order_release);
  return entry;
}

double RpdEstimator::rpd(std::size_t h, std::uint64_t mac, int rssi) const {
  const PointStats& s = stats(h);
  if (s.neighbour_count == 0) return 0.0;
  const auto hist_it = s.histograms.find(mac);
  if (hist_it == s.histograms.end()) return 0.0;
  std::uint64_t matches = 0;
  for (int v = rssi - params_.rssi_tolerance_db; v <= rssi + params_.rssi_tolerance_db;
       ++v) {
    const auto it = hist_it->second.find(v);
    if (it != hist_it->second.end()) matches += it->second;
  }
  return static_cast<double>(matches) / static_cast<double>(s.neighbour_count);
}

std::size_t RpdEstimator::counting_size(std::size_t h) const {
  return stats(h).neighbour_count;
}

double RpdEstimator::density(std::size_t h) const {
  const double area = M_PI * params_.counting_radius_m * params_.counting_radius_m;
  return static_cast<double>(counting_size(h)) / area;
}

double RpdEstimator::theta2(std::size_t h) const {
  return 1.0 - std::pow(params_.theta2_base, density(h));
}

}  // namespace trajkit::wifi
