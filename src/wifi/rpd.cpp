#include "wifi/rpd.hpp"

#include <cmath>
#include <stdexcept>

namespace trajkit::wifi {

DenseRpdStatsCache::DenseRpdStatsCache(std::size_t slots) : slots_(slots) {}

std::shared_ptr<const RpdPointStats> DenseRpdStatsCache::get_or_build(
    std::size_t h, const std::function<RpdPointStats()>& build) {
  if (h >= slots_.size()) {
    throw std::out_of_range("DenseRpdStatsCache: reference point out of range");
  }
  Slot& slot = slots_[h];
  // Fast path: slot already published (acquire pairs with the release below).
  if (slot.ready.load(std::memory_order_acquire)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return slot.value;
  }
  std::lock_guard<std::mutex> lock(stripes_[h % stripes_.size()]);
  if (slot.ready.load(std::memory_order_relaxed)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return slot.value;
  }
  slot.value = std::make_shared<const RpdPointStats>(build());
  slot.ready.store(true, std::memory_order_release);
  misses_.fetch_add(1, std::memory_order_relaxed);
  return slot.value;
}

void DenseRpdStatsCache::invalidate(const std::vector<std::size_t>& keys) {
  for (const std::size_t h : keys) {
    if (h >= slots_.size()) continue;  // appended past the slot table: never cached
    Slot& slot = slots_[h];
    std::lock_guard<std::mutex> lock(stripes_[h % stripes_.size()]);
    if (!slot.ready.load(std::memory_order_relaxed)) continue;
    // Unpublish before dropping the value so a racing fast-path reader either
    // sees the old (complete) entry or takes the build path.
    slot.ready.store(false, std::memory_order_release);
    slot.value.reset();
    invalidations_.fetch_add(1, std::memory_order_relaxed);
  }
}

RpdStatsCache::CacheStats DenseRpdStatsCache::stats() const {
  return {hits_.load(std::memory_order_relaxed),
          misses_.load(std::memory_order_relaxed),
          invalidations_.load(std::memory_order_relaxed)};
}

RpdEstimator::RpdEstimator(const ReferenceIndex& index, RpdParams params,
                           std::shared_ptr<RpdStatsCache> cache)
    : index_(&index), params_(params), cache_(std::move(cache)) {
  if (params_.counting_radius_m <= 0.0) {
    throw std::invalid_argument("RpdEstimator: counting radius must be positive");
  }
  if (params_.theta2_base <= 0.0 || params_.theta2_base >= 1.0) {
    throw std::invalid_argument("RpdEstimator: theta2 base must be in (0, 1)");
  }
  if (params_.rssi_tolerance_db < 0) {
    throw std::invalid_argument("RpdEstimator: tolerance must be non-negative");
  }
  if (!cache_) cache_ = std::make_shared<DenseRpdStatsCache>(index.size());
}

RpdPointStats RpdEstimator::build_stats(std::size_t h) const {
  RpdPointStats stats;
  const auto nbrs = index_->within((*index_)[h].pos, params_.counting_radius_m);
  stats.neighbour_count = nbrs.size();
  for (std::size_t q : nbrs) {
    for (const auto& obs : (*index_)[q].scan) {
      ++stats.histograms[obs.mac][obs.rssi_dbm];
    }
  }
  return stats;
}

std::shared_ptr<const RpdPointStats> RpdEstimator::point_stats(std::size_t h) const {
  return cache_->get_or_build(h, [this, h] { return build_stats(h); });
}

double RpdEstimator::rpd_from(const RpdPointStats& stats, std::uint64_t mac,
                              int rssi) const {
  if (stats.neighbour_count == 0) return 0.0;
  const auto hist_it = stats.histograms.find(mac);
  if (hist_it == stats.histograms.end()) return 0.0;
  std::uint64_t matches = 0;
  for (int v = rssi - params_.rssi_tolerance_db; v <= rssi + params_.rssi_tolerance_db;
       ++v) {
    const auto it = hist_it->second.find(v);
    if (it != hist_it->second.end()) matches += it->second;
  }
  return static_cast<double>(matches) / static_cast<double>(stats.neighbour_count);
}

double RpdEstimator::density_of(const RpdPointStats& stats) const {
  const double area = M_PI * params_.counting_radius_m * params_.counting_radius_m;
  return static_cast<double>(stats.neighbour_count) / area;
}

double RpdEstimator::theta2_from(const RpdPointStats& stats) const {
  return 1.0 - std::pow(params_.theta2_base, density_of(stats));
}

double RpdEstimator::rpd(std::size_t h, std::uint64_t mac, int rssi) const {
  return rpd_from(*point_stats(h), mac, rssi);
}

std::size_t RpdEstimator::counting_size(std::size_t h) const {
  return point_stats(h)->neighbour_count;
}

double RpdEstimator::density(std::size_t h) const {
  return density_of(*point_stats(h));
}

double RpdEstimator::theta2(std::size_t h) const {
  return theta2_from(*point_stats(h));
}

void RpdEstimator::set_cache(std::shared_ptr<RpdStatsCache> cache) {
  if (!cache) throw std::invalid_argument("RpdEstimator::set_cache: null cache");
  cache_ = std::move(cache);
}

}  // namespace trajkit::wifi
