// Per-RSSI confidence estimation (Eqs. 5 and 7).
//
// For an uploaded point O with its scan, every reference point H within the
// circle C_O(r) votes on each reported RSSI with weight
//   theta_1(H, O) — inverse-distance, normalised over C_O(r)   (Eq. 5)
//   theta_2(H)    — RPD-reliability from the counting density   (Eq. 6)
// and contribution RPD_H^mac(O.rssi).  The combined confidence is
//   Phi_O(O.rssi_i) = sum_H theta_1 * theta_2 * RPD_H^mac_i(O.rssi_i).  (Eq. 7)
#pragma once

#include <cstdint>
#include <vector>

#include "wifi/rpd.hpp"

namespace trajkit::wifi {

struct ConfidenceParams {
  double reference_radius_m = 2.5;  ///< the paper's r (peak accuracy at 2.5 m)
  std::size_t top_k = 8;            ///< strongest APs considered per point
  bool use_theta1 = true;           ///< ablation switches
  bool use_theta2 = true;
  RpdParams rpd;
};

/// Confidence verdict for one AP of one uploaded point.
struct ApConfidence {
  std::uint64_t mac = 0;
  int rssi_dbm = 0;
  double phi = 0.0;          ///< Eq. 7 confidence
  std::size_t num_refs = 0;  ///< reference points that observed this AP
};

class ConfidenceEstimator {
 public:
  /// `index` must outlive the estimator.
  ConfidenceEstimator(const ReferenceIndex& index, ConfidenceParams params = {});

  /// Confidences of the top-k strongest APs of `scan` at claimed position
  /// `pos`.  Returns exactly min(top_k, scan.size()) entries in scan order.
  /// `exclude_traj` removes one source trajectory's own points from the
  /// reference circle (leave-own-trajectory-out for historical uploads).
  std::vector<ApConfidence> point_confidence(
      const Enu& pos, const WifiScan& scan,
      std::uint32_t exclude_traj = kNoTrajectory) const;

  /// Number of reference points within r of `pos` (Fig. 5's density driver).
  std::size_t reference_count(const Enu& pos) const;

  /// Swap the RPD stats cache backing this estimator (serve-layer shared
  /// LRU).  Not thread-safe against in-flight lookups: call before serving.
  void set_rpd_cache(std::shared_ptr<RpdStatsCache> cache) {
    rpd_.set_cache(std::move(cache));
  }

  const ConfidenceParams& params() const { return params_; }
  const RpdEstimator& rpd() const { return rpd_; }

 private:
  const ReferenceIndex* index_;
  ConfidenceParams params_;
  RpdEstimator rpd_;
};

}  // namespace trajkit::wifi
