#include "wifi/confidence.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace trajkit::wifi {
namespace {

/// Reported positions carry GPS noise; two crowd reports can land on the same
/// coordinate, so the inverse-distance weight needs a floor.
constexpr double kMinDistanceM = 0.05;

}  // namespace

ConfidenceEstimator::ConfidenceEstimator(const ReferenceIndex& index,
                                         ConfidenceParams params)
    : index_(&index), params_(params), rpd_(index, params.rpd) {
  if (params_.reference_radius_m <= 0.0) {
    throw std::invalid_argument("ConfidenceEstimator: radius must be positive");
  }
  if (params_.top_k == 0) {
    throw std::invalid_argument("ConfidenceEstimator: top_k must be positive");
  }
}

std::vector<ApConfidence> ConfidenceEstimator::point_confidence(
    const Enu& pos, const WifiScan& scan, std::uint32_t exclude_traj) const {
  const auto refs = index_->within(pos, params_.reference_radius_m, exclude_traj);

  // theta_1 normalisation: sum of inverse distances over C_O(r).
  std::vector<double> inv_dist(refs.size());
  double inv_sum = 0.0;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    const double d = std::max(distance((*index_)[refs[i]].pos, pos), kMinDistanceM);
    inv_dist[i] = 1.0 / d;
    inv_sum += inv_dist[i];
  }

  const std::size_t k = std::min(params_.top_k, scan.size());
  std::vector<ApConfidence> out(k);
  for (std::size_t a = 0; a < k; ++a) {
    out[a].mac = scan[a].mac;
    out[a].rssi_dbm = scan[a].rssi_dbm;
  }
  // Reference-major accumulation: each reference point's cached counting
  // statistics are fetched once and its theta weights computed once, then
  // every top-k AP accumulates from them.  For a fixed AP the per-reference
  // additions still happen in index order with identical operands, so phi is
  // bit-identical to the old AP-major loop — this only cuts cache probes and
  // theta_2 evaluations by a factor of k.
  for (std::size_t i = 0; i < refs.size(); ++i) {
    const std::size_t h = refs[i];
    const auto stats = rpd_.point_stats(h);
    const double theta1 = params_.use_theta1
                              ? inv_dist[i] / inv_sum
                              : 1.0 / static_cast<double>(refs.size());
    const double theta2 = params_.use_theta2 ? rpd_.theta2_from(*stats) : 1.0;
    const WifiScan& ref_scan = (*index_)[h].scan;
    for (auto& ac : out) {
      int observed = 0;
      if (scan_lookup(ref_scan, ac.mac, observed)) ++ac.num_refs;
      ac.phi += theta1 * theta2 * rpd_.rpd_from(*stats, ac.mac, ac.rssi_dbm);
    }
  }
  return out;
}

std::size_t ConfidenceEstimator::reference_count(const Enu& pos) const {
  return index_->count_within(pos, params_.reference_radius_m);
}

}  // namespace trajkit::wifi
