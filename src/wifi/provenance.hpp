// Per-uploader provenance statistics and robust per-cell RSSI aggregation.
//
// The crowd store's CellStatsGrid pools every uploader's observations into
// one sufficient-statistics accumulator per (cell, AP) — exactly the right
// shape for an honest crowd, and exactly the wrong one under the threat
// model of "Coordinated Position Falsification Attacks" (PAPERS.md): k
// colluding uploaders who flood one cell with shifted RSSIs drag the pooled
// mean wherever they like, because the mean weighs *observations*, not
// *witnesses*.  This grid keeps the same sufficient statistics broken down
// by uploader, so aggregation can weigh each distinct witness once:
//
//   * trimmed mean over per-uploader means — discards the top/bottom
//     trim-fraction of witnesses before averaging;
//   * median-of-uploader-means (trim >= 0.5) — immune while colluders are a
//     minority of distinct uploaders in the cell, no matter how many
//     observations each of them floods in.
//
// RobustCellAggregator front-ends both grids: with trimming disabled
// (trim = 0) it answers from the pooled CellStatsGrid accumulators, bitwise
// identical to ApCellStats::mean() — the exact-mean oracle the equivalence
// tests pin — and with trimming enabled it answers from the per-uploader
// breakdown here.
//
// Determinism mirrors cell_stats.hpp: ordered containers, ingestion-order
// accumulation, %.17g round-trip serialisation, so an incrementally
// maintained grid is bitwise-equal to one rebuilt by replay.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "wifi/cell_stats.hpp"
#include "wifi/refindex.hpp"

namespace trajkit::wifi {

/// Stable identity of an uploading device/account, stamped by the ingestion
/// edge (v2 journal frames).  0 is the anonymous uploader: pre-provenance
/// records replay under it, and it is exempt from reputation tracking.
using UploaderId = std::uint64_t;
inline constexpr UploaderId kAnonymousUploader = 0;

/// CellStatsGrid broken down by uploader: per (cell, AP, uploader), the
/// count/sum/sumsq of that uploader's RSSI observations there.
class ProvenanceGrid {
 public:
  using CellKey = CellStatsGrid::CellKey;

  struct Cell {
    std::uint64_t count = 0;  ///< reference points in the cell (all uploaders)
    /// mac -> uploader -> that uploader's RSSI sufficient statistics.
    std::map<std::uint64_t, std::map<UploaderId, ApCellStats>> aps;

    friend bool operator==(const Cell&, const Cell&) = default;
  };

  explicit ProvenanceGrid(double cell_size_m = 4.0);

  /// Fold one ingested reference point into its cell under `uploader`.
  void add(const ReferencePoint& point, UploaderId uploader);

  CellKey cell_of(const Enu& pos) const;
  const Cell* cell_at(const Enu& pos) const;

  std::uint64_t point_count() const { return points_; }
  std::size_t cell_count() const { return cells_.size(); }
  double cell_size_m() const { return cell_size_m_; }
  const std::map<CellKey, Cell>& cells() const { return cells_; }

  /// Per-uploader mean RSSIs of (cell at `pos`, `mac`), in uploader-id order,
  /// optionally excluding one uploader (self-exclusion for reputation
  /// scoring, so a witness never vouches for itself).  Empty when nothing
  /// landed there.
  std::vector<double> uploader_means(const Enu& pos, std::uint64_t mac,
                                     UploaderId exclude = kAnonymousUploader) const;

  /// Deterministic text rendering (%.17g doubles) — the snapshot record
  /// format and the compaction debug-check equality witness.
  std::string serialize() const;
  static Expected<ProvenanceGrid, std::string> deserialize(const std::string& text);

  /// FNV-1a of serialize().
  std::uint64_t checksum() const;

  friend bool operator==(const ProvenanceGrid&, const ProvenanceGrid&) = default;

 private:
  double cell_size_m_;
  std::uint64_t points_ = 0;
  std::map<CellKey, Cell> cells_;
};

/// How per-cell RSSI consensus is aggregated across witnesses.
struct RobustAggregationParams {
  /// Fraction of witnesses trimmed from each end of the sorted per-uploader
  /// means before averaging.  0 disables trimming (pooled exact mean, the
  /// bitwise oracle path); >= 0.5 degenerates to the median of uploader
  /// means.
  double trim_fraction = 0.5;
  /// Minimum distinct witnesses before a robust consensus exists; below it
  /// estimate()/consensus_excluding() report "no consensus" rather than
  /// letting one witness define truth.  Ignored on the trim = 0 path.
  std::size_t min_uploaders = 2;
};

/// Trimmed mean of `values` (taken by value; sorted internally):
/// floor(trim * n) dropped from each end — capped so at least one value
/// survives — and trim >= 0.5 yields the median.  The shared arithmetic of
/// the aggregator and the tests.
double trimmed_mean(std::vector<double> values, double trim_fraction);

/// Robust per-cell RSSI estimator over the pooled + per-uploader grids.
/// Both grids must describe the same ingestion stream (same cell size, same
/// points) and outlive the aggregator.
class RobustCellAggregator {
 public:
  RobustCellAggregator(const CellStatsGrid& pooled, const ProvenanceGrid& provenance,
                       RobustAggregationParams params = {});

  /// Consensus RSSI of (cell at `pos`, `mac`).  trim = 0: the pooled
  /// ApCellStats::mean(), bitwise-equal to the pre-provenance estimate;
  /// trim > 0: trimmed mean / median of per-uploader means.  Returns false
  /// when the cell/AP has no (or too few) witnesses.
  bool estimate(const Enu& pos, std::uint64_t mac, double* out) const;

  /// The consensus the *other* witnesses form — `exclude`'s own observations
  /// are held out, so reputation scoring never lets an uploader certify
  /// itself.  Always aggregates robustly (a trim = 0 configuration still
  /// trims nothing but weighs witnesses, not observations).
  bool consensus_excluding(const Enu& pos, std::uint64_t mac, UploaderId exclude,
                           double* out) const;

  const RobustAggregationParams& params() const { return params_; }

 private:
  const CellStatsGrid* pooled_;
  const ProvenanceGrid* provenance_;
  RobustAggregationParams params_;
};

}  // namespace trajkit::wifi
