// Uploader reputation and the anomaly quarantine ledger.
//
// Every provenance-stamped upload is scored against the robust consensus the
// *other* witnesses of its cells form (wifi/provenance.hpp): agreement 1
// means the scan matches what the crowd already believes about those cells,
// 0 means it contradicts them outright.  An uploader's reputation is the
// exponentially-decayed average of its agreement history — decay keyed to
// appends, not wall time, so replaying a journal reproduces the scores
// bitwise — and an uploader whose reputation sinks below the quarantine
// threshold (after enough observations to be fair) is quarantined: its
// points stay durable in the store, but CrowdStore::trusted_points() holds
// them out of compaction-published artifacts and epoch publishes until an
// operator review clears it ("#clear" control frame).
//
// Properties the tests pin: observe(1) never lowers a score, observe(0)
// strictly lowers it (down to 0), the update is a pure function of the
// observation sequence, and quarantine entry/exit round-trips through the
// snapshot + journal recovery path.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "wifi/provenance.hpp"

namespace trajkit::wifi {

struct ReputationParams {
  /// EWMA weight of the newest agreement: score' = (1-decay)*score +
  /// decay*agreement.  Larger = faster to condemn and to forgive.
  double decay = 0.2;
  /// Deviation from consensus fully tolerated (GPS noise + shadowing), dB.
  double agree_tol_db = 4.0;
  /// Agreement falls linearly from 1 to 0 across this band past the
  /// tolerance; beyond tol + falloff the observation counts as 0.
  double agree_falloff_db = 8.0;
  /// Reputation below this (with >= min_observations) triggers quarantine.
  double quarantine_below = 0.5;
  /// Scored appends before an uploader can be auto-quarantined.
  std::uint64_t min_observations = 6;
};

/// One uploader's standing.  Scores start at 1 (innocent until measured).
struct UploaderRecord {
  double score = 1.0;
  std::uint64_t observations = 0;  ///< scored appends folded into `score`
  bool quarantined = false;

  friend bool operator==(const UploaderRecord&, const UploaderRecord&) = default;
};

class ReputationBook {
 public:
  /// Agreement of one deviation-from-consensus, in [0, 1]: 1 inside the
  /// tolerance, linear falloff, 0 beyond.
  static double agreement(double deviation_db, const ReputationParams& params);

  /// Fold one scored append into `uploader`'s reputation; auto-quarantines
  /// when the decayed score crosses the threshold with enough history.
  /// Anonymous uploads are never tracked (no-op).
  void observe(UploaderId uploader, double agreement, const ReputationParams& params);

  /// Review actions (journaled as "#quarantine"/"#clear" control frames by
  /// the store).  clear() resets the uploader to a fresh record: review
  /// decided the history was wrong, so it does not linger.
  void quarantine(UploaderId uploader);
  void clear(UploaderId uploader);

  bool is_quarantined(UploaderId uploader) const;
  /// The uploader's record, default (fresh) if never observed.
  UploaderRecord record(UploaderId uploader) const;
  std::vector<UploaderId> quarantined() const;
  const std::map<UploaderId, UploaderRecord>& records() const { return records_; }

  /// Deterministic text rendering (%.17g) — the snapshot record format.
  std::string serialize() const;
  static Expected<ReputationBook, std::string> deserialize(const std::string& text);

  friend bool operator==(const ReputationBook&, const ReputationBook&) = default;

 private:
  std::map<UploaderId, UploaderRecord> records_;
};

}  // namespace trajkit::wifi
