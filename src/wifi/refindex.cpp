#include "wifi/refindex.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace trajkit::wifi {

bool scan_lookup(const WifiScan& scan, std::uint64_t mac, int& out) {
  for (const auto& obs : scan) {
    if (obs.mac == mac) {
      out = obs.rssi_dbm;
      return true;
    }
  }
  return false;
}

BoundingBox ReferenceIndex::natural_bounds(const std::vector<ReferencePoint>& points) {
  std::vector<Enu> positions;
  positions.reserve(points.size());
  for (const auto& p : points) positions.push_back(p.pos);
  return BoundingBox::of(positions).expanded(1.0);
}

ReferenceIndex::ReferenceIndex(std::vector<ReferencePoint> points, double cell_size_m)
    : ReferenceIndex(std::move(points), cell_size_m, BoundingBox{}) {}

ReferenceIndex::ReferenceIndex(std::vector<ReferencePoint> points, double cell_size_m,
                               const BoundingBox& bounds)
    : points_(std::move(points)), cell_size_m_(cell_size_m) {
  if (cell_size_m_ <= 0.0) {
    throw std::invalid_argument("ReferenceIndex: cell size must be positive");
  }
  bounds_ = bounds.width() > 0.0 || bounds.height() > 0.0 ? bounds
                                                          : natural_bounds(points_);

  grid_w_ = static_cast<std::size_t>(
                std::max(1.0, std::ceil(bounds_.width() / cell_size_m_))) +
            1;
  grid_h_ = static_cast<std::size_t>(
                std::max(1.0, std::ceil(bounds_.height() / cell_size_m_))) +
            1;
  grid_.assign(grid_w_ * grid_h_, {});
  for (std::size_t i = 0; i < points_.size(); ++i) {
    grid_[cell_of(points_[i].pos)].push_back(static_cast<std::uint32_t>(i));
  }
}

std::size_t ReferenceIndex::cell_of(const Enu& p) const {
  const double cx = (p.east - bounds_.min_east) / cell_size_m_;
  const double cy = (p.north - bounds_.min_north) / cell_size_m_;
  const auto ix = static_cast<std::size_t>(
      std::clamp(cx, 0.0, static_cast<double>(grid_w_ - 1)));
  const auto iy = static_cast<std::size_t>(
      std::clamp(cy, 0.0, static_cast<double>(grid_h_ - 1)));
  return iy * grid_w_ + ix;
}

template <typename Visitor>
void ReferenceIndex::visit(const Enu& center, double radius, Visitor&& visitor) const {
  if (points_.empty()) return;
  const auto reach = static_cast<long>(std::ceil(radius / cell_size_m_));
  const long ix = static_cast<long>((center.east - bounds_.min_east) / cell_size_m_);
  const long iy = static_cast<long>((center.north - bounds_.min_north) / cell_size_m_);
  const double radius_sq = radius * radius;
  for (long dy = -reach; dy <= reach; ++dy) {
    const long y = iy + dy;
    if (y < 0 || y >= static_cast<long>(grid_h_)) continue;
    for (long dx = -reach; dx <= reach; ++dx) {
      const long x = ix + dx;
      if (x < 0 || x >= static_cast<long>(grid_w_)) continue;
      for (std::uint32_t idx :
           grid_[static_cast<std::size_t>(y) * grid_w_ + static_cast<std::size_t>(x)]) {
        if (distance_sq(points_[idx].pos, center) <= radius_sq) visitor(idx);
      }
    }
  }
}

std::vector<std::size_t> ReferenceIndex::within(const Enu& center, double radius,
                                                std::uint32_t exclude_traj) const {
  std::vector<std::size_t> out;
  visit(center, radius, [&](std::uint32_t i) {
    if (exclude_traj == kNoTrajectory || points_[i].traj_id != exclude_traj) {
      out.push_back(i);
    }
  });
  return out;
}

std::size_t ReferenceIndex::count_within(const Enu& center, double radius) const {
  std::size_t count = 0;
  visit(center, radius, [&count](std::uint32_t) { ++count; });
  return count;
}

}  // namespace trajkit::wifi
