#include "wifi/features.hpp"

#include <stdexcept>

namespace trajkit::wifi {

std::vector<double> trajectory_features(const ConfidenceEstimator& estimator,
                                        const ScannedUpload& upload) {
  if (upload.positions.size() != upload.scans.size()) {
    throw std::invalid_argument("trajectory_features: positions/scans mismatch");
  }
  const std::size_t k = estimator.params().top_k;
  std::vector<double> out;
  out.reserve(2 * k * upload.positions.size());
  for (std::size_t j = 0; j < upload.positions.size(); ++j) {
    const auto confidences = estimator.point_confidence(
        upload.positions[j], upload.scans[j], upload.source_traj_id);
    for (std::size_t a = 0; a < k; ++a) {
      if (a < confidences.size()) {
        out.push_back(static_cast<double>(confidences[a].num_refs));
        out.push_back(confidences[a].phi);
      } else {
        out.push_back(0.0);
        out.push_back(0.0);
      }
    }
  }
  return out;
}

std::size_t trajectory_feature_width(const ConfidenceEstimator& estimator,
                                     std::size_t points) {
  return 2 * estimator.params().top_k * points;
}

}  // namespace trajkit::wifi
