#include "wifi/features.hpp"

#include <stdexcept>

#include "common/parallel.hpp"

namespace trajkit::wifi {

std::vector<double> trajectory_features(const ConfidenceEstimator& estimator,
                                        const ScannedUpload& upload) {
  if (upload.positions.size() != upload.scans.size()) {
    throw std::invalid_argument("trajectory_features: positions/scans mismatch");
  }
  // Per-point Phi evaluation (Eq. 5-7) is the detector's hottest loop; every
  // point writes its own 2k-wide slot, so points evaluate in parallel.  When
  // the caller is itself a parallel region (e.g. RssiDetector::train fanning
  // out over uploads), this serializes automatically.
  const std::size_t k = estimator.params().top_k;
  std::vector<double> out(2 * k * upload.positions.size(), 0.0);
  parallel_for(0, upload.positions.size(), 8, [&](std::size_t j) {
    const auto confidences = estimator.point_confidence(
        upload.positions[j], upload.scans[j], upload.source_traj_id);
    double* slot = out.data() + 2 * k * j;
    const std::size_t filled = confidences.size() < k ? confidences.size() : k;
    for (std::size_t a = 0; a < filled; ++a) {
      slot[2 * a] = static_cast<double>(confidences[a].num_refs);
      slot[2 * a + 1] = confidences[a].phi;
    }
  });
  return out;
}

std::size_t trajectory_feature_width(const ConfidenceEstimator& estimator,
                                     std::size_t points) {
  return 2 * estimator.params().top_k * points;
}

}  // namespace trajkit::wifi
