// Crowdsourced reference-point store with spatial radius queries.
//
// The provider's dataset H = {H_1 ... H_k} (Sec. III-B): every point of every
// historical trajectory, with its reported GPS position and WiFi scan.  The
// detector issues two kinds of radius queries per verified point — reference
// points within r of the uploaded position, and RPD counting neighbours
// within R of each reference point — so the store is backed by a uniform
// hash grid sized to the typical query radius.
#pragma once

#include <cstddef>
#include <vector>

#include "geo/geo.hpp"
#include "wifi/scan.hpp"

namespace trajkit::wifi {

/// Sentinel trajectory id: "not part of any tracked trajectory".
inline constexpr std::uint32_t kNoTrajectory = 0xffffffffu;

/// One crowdsourced historical point.
struct ReferencePoint {
  Enu pos;        ///< reported (GPS-noisy) position
  WifiScan scan;  ///< RSSIs/MACs observed there
  std::uint32_t traj_id = kNoTrajectory;  ///< source trajectory (for
                                          ///< leave-own-trajectory-out queries)
};

class ReferenceIndex {
 public:
  /// Build over a fixed set of points; `cell_size_m` should be close to the
  /// largest common query radius (default suits r = 2.5 m, R = 3 m).
  explicit ReferenceIndex(std::vector<ReferencePoint> points, double cell_size_m = 4.0);

  /// Build with an explicit grid extent instead of the points' own bounding
  /// box.  within() returns candidates in grid order (cells row-major, then
  /// insertion order within a cell), and downstream confidence sums
  /// accumulate in that order — so a geo-shard holding a *slice* of a global
  /// reference set must index it under the global grid geometry
  /// (natural_bounds of the full set) to reproduce the unsharded float
  /// results bit for bit.  `bounds` need not contain every point; outliers
  /// clamp to edge cells exactly as the natural-bounds grid clamps its
  /// expansion margin.
  ReferenceIndex(std::vector<ReferencePoint> points, double cell_size_m,
                 const BoundingBox& bounds);

  /// The grid extent the single-argument constructor would derive for
  /// `points`: their bounding box expanded by 1 m.  Exposed so sharded
  /// slices can be indexed under the full set's geometry (see above).
  static BoundingBox natural_bounds(const std::vector<ReferencePoint>& points);

  /// The grid extent this index was built with.
  const BoundingBox& bounds() const { return bounds_; }

  std::size_t size() const { return points_.size(); }
  const ReferencePoint& operator[](std::size_t i) const { return points_[i]; }

  /// Indices of all points within `radius` of `center` (inclusive).
  /// `exclude_traj` drops points of one source trajectory — used when the
  /// verified upload is itself part of the historical store, so it does not
  /// self-certify (kNoTrajectory excludes nothing).
  std::vector<std::size_t> within(const Enu& center, double radius,
                                  std::uint32_t exclude_traj = kNoTrajectory) const;

  /// Number of points within `radius` of `center` — cheaper than within().
  std::size_t count_within(const Enu& center, double radius) const;

 private:
  std::size_t cell_of(const Enu& p) const;
  template <typename Visitor>
  void visit(const Enu& center, double radius, Visitor&& visitor) const;

  std::vector<ReferencePoint> points_;
  double cell_size_m_;
  BoundingBox bounds_;
  std::size_t grid_w_ = 1;
  std::size_t grid_h_ = 1;
  std::vector<std::vector<std::uint32_t>> grid_;
};

}  // namespace trajkit::wifi
