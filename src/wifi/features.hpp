// Trajectory-level feature vector for the RSSI detector (Eq. 8).
//
// For every point P_j of the uploaded trajectory, the features are the pairs
// (Num_mac, Phi(rssi)) of its k strongest APs, concatenated over all n
// points: feature = [feat_1, ..., feat_n], |feature| = 2 * k * n.  Points
// that hear fewer than k APs are padded with (0, 0) — "no reference evidence"
// and "no confidence" coincide, which is exactly what the classifier should
// treat as missing.
#pragma once

#include <vector>

#include "wifi/confidence.hpp"

namespace trajkit::wifi {

/// An uploaded trajectory as the detector sees it: claimed positions plus the
/// scan reported at each (paper Sec. III-B design goal).
struct ScannedUpload {
  std::vector<Enu> positions;
  std::vector<WifiScan> scans;
  /// When the upload is itself one of the provider's historical trajectories
  /// (the paper trains on them), its own reference points must not vote on
  /// it; kNoTrajectory for fresh uploads.
  std::uint32_t source_traj_id = kNoTrajectory;
};

/// Eq. 8 feature vector; length is 2 * top_k * positions.size().
std::vector<double> trajectory_features(const ConfidenceEstimator& estimator,
                                        const ScannedUpload& upload);

/// Feature width for a given point count and estimator (for pre-sizing).
std::size_t trajectory_feature_width(const ConfidenceEstimator& estimator,
                                     std::size_t points);

}  // namespace trajkit::wifi
