#include "wifi/detector.hpp"

#include <stdexcept>

#include "common/parallel.hpp"

namespace trajkit::wifi {

RssiDetector::RssiDetector(std::vector<ReferencePoint> history,
                           RssiDetectorConfig config)
    : index_(std::move(history)),
      confidence_params_(config.confidence),
      estimator_(index_, config.confidence),
      classifier_(config.classifier) {}

void RssiDetector::train(const std::vector<ScannedUpload>& uploads,
                         const std::vector<int>& labels) {
  if (uploads.size() != labels.size() || uploads.empty()) {
    throw std::invalid_argument("RssiDetector::train: bad dataset");
  }
  trained_points_ = uploads.front().positions.size();
  for (const auto& upload : uploads) {
    if (upload.positions.size() != trained_points_) {
      throw std::invalid_argument("RssiDetector::train: uneven upload lengths");
    }
  }
  // Feature extraction dominates training cost and only reads the reference
  // index, so uploads are featurised in parallel; the classifier itself
  // trains serially on the index-ordered feature matrix.
  std::vector<std::vector<double>> x(uploads.size());
  parallel_for(0, uploads.size(), 1,
               [&](std::size_t i) { x[i] = features(uploads[i]); });
  classifier_.train(x, labels);
}

std::vector<double> RssiDetector::features(const ScannedUpload& upload) const {
  return trajectory_features(estimator_, upload);
}

double RssiDetector::predict_proba(const ScannedUpload& upload) const {
  if (trained_points_ == 0) {
    throw std::logic_error("RssiDetector: classifier not trained");
  }
  if (upload.positions.size() != trained_points_) {
    throw std::invalid_argument("RssiDetector: upload length differs from training");
  }
  return classifier_.predict_proba(features(upload));
}

int RssiDetector::verify(const ScannedUpload& upload, double threshold) const {
  return predict_proba(upload) >= threshold ? 1 : 0;
}

std::vector<double> RssiDetector::point_scores(const ScannedUpload& upload) const {
  if (upload.positions.size() != upload.scans.size()) {
    throw std::invalid_argument("RssiDetector::point_scores: bad upload");
  }
  std::vector<double> out(upload.positions.size(), 0.0);
  parallel_for(0, upload.positions.size(), 8, [&](std::size_t j) {
    const auto confidences = estimator_.point_confidence(
        upload.positions[j], upload.scans[j], upload.source_traj_id);
    double total = 0.0;
    for (const auto& c : confidences) total += c.phi;
    out[j] = confidences.empty() ? 0.0
                                 : total / static_cast<double>(confidences.size());
  });
  return out;
}

std::vector<ReferencePoint> flatten_history(
    const std::vector<ScannedUpload>& historical) {
  std::vector<ReferencePoint> out;
  for (std::size_t t = 0; t < historical.size(); ++t) {
    const auto& traj = historical[t];
    if (traj.positions.size() != traj.scans.size()) {
      throw std::invalid_argument("flatten_history: positions/scans mismatch");
    }
    for (std::size_t i = 0; i < traj.positions.size(); ++i) {
      out.push_back({traj.positions[i], traj.scans[i], static_cast<std::uint32_t>(t)});
    }
  }
  return out;
}

}  // namespace trajkit::wifi
