#include "wifi/detector.hpp"

#include <cstdio>
#include <stdexcept>

#include "common/parallel.hpp"

namespace trajkit::wifi {
namespace {

void append_num(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

std::string VerdictReport::canonical_string() const {
  std::string out = "verdict=" + std::to_string(verdict) + " p_real=";
  append_num(out, p_real);
  out += " threshold=";
  append_num(out, threshold);
  out += " features=[";
  for (std::size_t i = 0; i < features.size(); ++i) {
    if (i) out += ',';
    append_num(out, features[i]);
  }
  out += "] point_scores=[";
  for (std::size_t i = 0; i < point_scores.size(); ++i) {
    if (i) out += ',';
    append_num(out, point_scores[i]);
  }
  out += ']';
  return out;
}

RssiDetector::RssiDetector(std::vector<ReferencePoint> history,
                           RssiDetectorConfig config)
    : RssiDetector(std::move(history), config, BoundingBox{}) {}

RssiDetector::RssiDetector(std::vector<ReferencePoint> history,
                           RssiDetectorConfig config, const BoundingBox& index_bounds)
    : index_(std::move(history), 4.0, index_bounds),
      config_(config),
      estimator_(index_, config.confidence),
      classifier_(config.classifier) {
  if (config_.threshold < 0.0 || config_.threshold > 1.0) {
    throw std::invalid_argument("RssiDetector: threshold must be in [0, 1]");
  }
}

void RssiDetector::train(const std::vector<ScannedUpload>& uploads,
                         const std::vector<int>& labels) {
  if (uploads.size() != labels.size() || uploads.empty()) {
    throw std::invalid_argument("RssiDetector::train: bad dataset");
  }
  trained_points_ = uploads.front().positions.size();
  for (const auto& upload : uploads) {
    if (upload.positions.size() != trained_points_) {
      throw std::invalid_argument("RssiDetector::train: uneven upload lengths");
    }
  }
  // Feature extraction dominates training cost and only reads the reference
  // index, so uploads are featurised in parallel; the classifier itself
  // trains serially on the index-ordered feature matrix.
  std::vector<std::vector<double>> x(uploads.size());
  parallel_for(0, uploads.size(), 1, [&](std::size_t i) {
    x[i] = trajectory_features(estimator_, uploads[i]);
  });
  classifier_.train(x, labels);
}

void RssiDetector::analyze_points(const ScannedUpload& upload,
                                  std::vector<double>& features,
                                  std::vector<double>& point_scores) const {
  if (upload.positions.size() != upload.scans.size()) {
    throw std::invalid_argument("RssiDetector::analyze: positions/scans mismatch");
  }
  // One point_confidence() walk per point feeds both outputs; per-point Phi
  // evaluation (Eq. 5-7) is the detector's hottest loop, and every point
  // writes disjoint slots, so points evaluate in parallel (serialized
  // automatically when the caller is itself a parallel region, e.g. the
  // serving layer fanning out over a batch).
  const std::size_t k = estimator_.params().top_k;
  const std::size_t n = upload.positions.size();
  features.assign(2 * k * n, 0.0);
  point_scores.assign(n, 0.0);
  parallel_for(0, n, 8, [&](std::size_t j) {
    const auto confidences = estimator_.point_confidence(
        upload.positions[j], upload.scans[j], upload.source_traj_id);
    double* slot = features.data() + 2 * k * j;
    double total = 0.0;
    for (std::size_t a = 0; a < confidences.size(); ++a) {
      slot[2 * a] = static_cast<double>(confidences[a].num_refs);
      slot[2 * a + 1] = confidences[a].phi;
      total += confidences[a].phi;
    }
    point_scores[j] = confidences.empty()
                          ? 0.0
                          : total / static_cast<double>(confidences.size());
  });
}

VerdictReport RssiDetector::analyze(const ScannedUpload& upload) const {
  if (trained_points_ == 0) {
    throw std::logic_error("RssiDetector: classifier not trained");
  }
  if (upload.positions.size() != trained_points_) {
    throw std::invalid_argument("RssiDetector: upload length differs from training");
  }
  VerdictReport report;
  analyze_points(upload, report.features, report.point_scores);
  report.p_real = classifier_.predict_proba(report.features);
  report.threshold = config_.threshold;
  report.verdict = report.p_real >= report.threshold ? 1 : 0;
  return report;
}

VerdictReport RssiDetector::classify_features(std::vector<double> features,
                                              std::vector<double> point_scores) const {
  if (trained_points_ == 0) {
    throw std::logic_error("RssiDetector: classifier not trained");
  }
  const std::size_t k = estimator_.params().top_k;
  if (point_scores.size() != trained_points_ ||
      features.size() != 2 * k * trained_points_) {
    throw std::invalid_argument("RssiDetector: merged feature width differs from training");
  }
  VerdictReport report;
  report.features = std::move(features);
  report.point_scores = std::move(point_scores);
  report.p_real = classifier_.predict_proba(report.features);
  report.threshold = config_.threshold;
  report.verdict = report.p_real >= report.threshold ? 1 : 0;
  return report;
}

void RssiDetector::set_rpd_cache(std::shared_ptr<RpdStatsCache> cache) {
  estimator_.set_rpd_cache(std::move(cache));
}

std::vector<ReferencePoint> flatten_history(
    const std::vector<ScannedUpload>& historical) {
  std::vector<ReferencePoint> out;
  for (std::size_t t = 0; t < historical.size(); ++t) {
    const auto& traj = historical[t];
    if (traj.positions.size() != traj.scans.size()) {
      throw std::invalid_argument("flatten_history: positions/scans mismatch");
    }
    for (std::size_t i = 0; i < traj.positions.size(); ++i) {
      out.push_back({traj.positions[i], traj.scans[i], static_cast<std::uint32_t>(t)});
    }
  }
  return out;
}

}  // namespace trajkit::wifi
