// RssiDetector persistence: a text header (config + reference store) followed
// by the serialised GBT classifier.  The store dominates the file size; RSSIs
// are written as compact integer pairs.
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "wifi/detector.hpp"

namespace trajkit::wifi {
namespace {

constexpr const char* kMagic = "trajkit_rssi_detector_v1";

}  // namespace

void RssiDetector::save(std::ostream& os) const {
  os << kMagic << '\n';
  const auto& conf = confidence_params_;
  os << std::setprecision(17);
  os << conf.reference_radius_m << ' ' << conf.top_k << ' ' << conf.use_theta1 << ' '
     << conf.use_theta2 << ' ' << conf.rpd.counting_radius_m << ' '
     << conf.rpd.rssi_tolerance_db << ' ' << conf.rpd.theta2_base << '\n';
  os << trained_points_ << '\n';
  os << index_.size() << '\n';
  for (std::size_t i = 0; i < index_.size(); ++i) {
    const ReferencePoint& p = index_[i];
    os << p.pos.east << ' ' << p.pos.north << ' ' << p.traj_id << ' '
       << p.scan.size();
    for (const auto& obs : p.scan) os << ' ' << obs.mac << ' ' << obs.rssi_dbm;
    os << '\n';
  }
  classifier_.save(os);
}

std::unique_ptr<RssiDetector> RssiDetector::load(std::istream& is) {
  std::string magic;
  if (!(is >> magic) || magic != kMagic) {
    throw std::runtime_error("RssiDetector::load: bad magic");
  }
  RssiDetectorConfig cfg;
  if (!(is >> cfg.confidence.reference_radius_m >> cfg.confidence.top_k >>
        cfg.confidence.use_theta1 >> cfg.confidence.use_theta2 >>
        cfg.confidence.rpd.counting_radius_m >> cfg.confidence.rpd.rssi_tolerance_db >>
        cfg.confidence.rpd.theta2_base)) {
    throw std::runtime_error("RssiDetector::load: bad config");
  }
  std::size_t trained_points = 0;
  std::size_t ref_count = 0;
  if (!(is >> trained_points >> ref_count)) {
    throw std::runtime_error("RssiDetector::load: bad header");
  }
  std::vector<ReferencePoint> refs;
  refs.reserve(ref_count);
  for (std::size_t i = 0; i < ref_count; ++i) {
    ReferencePoint p;
    std::size_t scan_size = 0;
    if (!(is >> p.pos.east >> p.pos.north >> p.traj_id >> scan_size)) {
      throw std::runtime_error("RssiDetector::load: truncated reference point");
    }
    p.scan.resize(scan_size);
    for (auto& obs : p.scan) {
      if (!(is >> obs.mac >> obs.rssi_dbm)) {
        throw std::runtime_error("RssiDetector::load: truncated scan");
      }
    }
    refs.push_back(std::move(p));
  }
  auto detector = std::make_unique<RssiDetector>(std::move(refs), cfg);
  detector->classifier_ = gbt::GbtClassifier::load(is);
  detector->trained_points_ = trained_points;
  return detector;
}

void RssiDetector::save_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("RssiDetector::save_file: cannot open " + path);
  save(os);
}

std::unique_ptr<RssiDetector> RssiDetector::load_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("RssiDetector::load_file: cannot open " + path);
  return load(is);
}

}  // namespace trajkit::wifi
