// RssiDetector persistence: a text header (config + reference store) followed
// by the serialised GBT classifier.  The store dominates the file size; RSSIs
// are written as compact integer pairs.
//
// Format history:
//   v1  config line = radius top_k theta1 theta2 R tolerance base
//   v2  v1 + the operating threshold appended to the config line
// try_load reads both; save always writes v2.
//
// On disk the text payload is wrapped in a CRC-framed durable container and
// committed atomically (common/durable); bare-text files from before the
// container existed still load.  Loaded reference points pass the same
// validation as live crowdsourced scans (wifi/validate) — a corrupt or
// hostile store is a clean error, never a poisoned index.
#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "common/durable/durable_file.hpp"
#include "common/fault.hpp"
#include "wifi/detector.hpp"
#include "wifi/validate.hpp"

namespace trajkit::wifi {
namespace {

constexpr const char* kMagicV1 = "trajkit_rssi_detector_v1";
constexpr const char* kMagicV2 = "trajkit_rssi_detector_v2";
constexpr const char* kDurableTag = "rssi_detector";
constexpr std::uint32_t kDurableVersion = 1;

/// Cap on deserialised reference points; the real stores are ~10^4-10^5.
constexpr std::size_t kMaxReferencePoints = 5'000'000;

using DetectorOrError = Expected<std::unique_ptr<RssiDetector>, std::string>;

}  // namespace

void RssiDetector::save(std::ostream& os) const {
  os << kMagicV2 << '\n';
  const auto& conf = config_.confidence;
  os << std::setprecision(17);
  os << conf.reference_radius_m << ' ' << conf.top_k << ' ' << conf.use_theta1 << ' '
     << conf.use_theta2 << ' ' << conf.rpd.counting_radius_m << ' '
     << conf.rpd.rssi_tolerance_db << ' ' << conf.rpd.theta2_base << ' '
     << config_.threshold << '\n';
  os << trained_points_ << '\n';
  os << index_.size() << '\n';
  for (std::size_t i = 0; i < index_.size(); ++i) {
    const ReferencePoint& p = index_[i];
    os << p.pos.east << ' ' << p.pos.north << ' ' << p.traj_id << ' '
       << p.scan.size();
    for (const auto& obs : p.scan) os << ' ' << obs.mac << ' ' << obs.rssi_dbm;
    os << '\n';
  }
  classifier_.save(os);
}

DetectorOrError RssiDetector::try_load(std::istream& is) {
  // Streams carry no path identity; every stream load shares key 0.  The
  // sequential attempt counter still lets fail_first model transient outages.
  if (global_faults().should_fail_seq(kFaultDetectorLoad, 0)) {
    return DetectorOrError::failure("RssiDetector: injected load fault");
  }
  std::string magic;
  if (!(is >> magic) || (magic != kMagicV1 && magic != kMagicV2)) {
    return DetectorOrError::failure("RssiDetector: bad magic (not a detector model)");
  }
  RssiDetectorConfig cfg;
  if (!(is >> cfg.confidence.reference_radius_m >> cfg.confidence.top_k >>
        cfg.confidence.use_theta1 >> cfg.confidence.use_theta2 >>
        cfg.confidence.rpd.counting_radius_m >> cfg.confidence.rpd.rssi_tolerance_db >>
        cfg.confidence.rpd.theta2_base)) {
    return DetectorOrError::failure("RssiDetector: bad config header");
  }
  if (magic == kMagicV2 && !(is >> cfg.threshold)) {
    return DetectorOrError::failure("RssiDetector: bad threshold field");
  }
  if (!std::isfinite(cfg.confidence.reference_radius_m) ||
      cfg.confidence.reference_radius_m <= 0.0 || cfg.confidence.top_k == 0 ||
      cfg.confidence.top_k > kMaxScanAps ||
      !std::isfinite(cfg.confidence.rpd.counting_radius_m) ||
      cfg.confidence.rpd.counting_radius_m <= 0.0 ||
      !std::isfinite(cfg.confidence.rpd.rssi_tolerance_db) ||
      !std::isfinite(cfg.confidence.rpd.theta2_base) ||
      !std::isfinite(cfg.threshold)) {
    return DetectorOrError::failure("RssiDetector: implausible config");
  }
  std::size_t trained_points = 0;
  std::size_t ref_count = 0;
  if (!(is >> trained_points >> ref_count)) {
    return DetectorOrError::failure("RssiDetector: bad header");
  }
  if (trained_points > kMaxUploadPoints || ref_count > kMaxReferencePoints) {
    return DetectorOrError::failure("RssiDetector: implausible store header");
  }
  std::vector<ReferencePoint> refs;
  refs.reserve(ref_count);
  for (std::size_t i = 0; i < ref_count; ++i) {
    ReferencePoint p;
    std::size_t scan_size = 0;
    if (!(is >> p.pos.east >> p.pos.north >> p.traj_id >> scan_size)) {
      return DetectorOrError::failure("RssiDetector: truncated reference point " +
                                      std::to_string(i));
    }
    if (scan_size > kMaxScanAps) {
      return DetectorOrError::failure("RssiDetector: oversized scan at point " +
                                      std::to_string(i));
    }
    p.scan.resize(scan_size);
    for (auto& obs : p.scan) {
      if (!(is >> obs.mac >> obs.rssi_dbm)) {
        return DetectorOrError::failure("RssiDetector: truncated scan at point " +
                                        std::to_string(i));
      }
    }
    auto valid = validate_reference_point(p);
    if (!valid) {
      return DetectorOrError::failure("RssiDetector: point " + std::to_string(i) +
                                      ": " + valid.error());
    }
    refs.push_back(std::move(p));
  }
  // Construction and the classifier's own loader validate by throwing; fold
  // those into the non-throwing contract here.
  try {
    auto detector = std::make_unique<RssiDetector>(std::move(refs), cfg);
    auto classifier = gbt::GbtClassifier::try_load(is);
    if (!classifier) return DetectorOrError::failure("RssiDetector: " + classifier.error());
    detector->classifier_ = std::move(classifier).value();
    detector->trained_points_ = trained_points;
    return DetectorOrError(std::move(detector));
  } catch (const std::exception& e) {
    return DetectorOrError::failure(std::string("RssiDetector: ") + e.what());
  }
}

DetectorOrError RssiDetector::try_load_file(const std::string& path) {
  if (global_faults().should_fail_seq(kFaultDetectorLoad,
                                      durable::path_fault_key(path))) {
    return DetectorOrError::failure("RssiDetector: injected load fault for " + path);
  }
  if (durable::file_has_durable_magic(path)) {
    auto contents = durable::read_durable_file(path, kDurableTag);
    if (!contents) return DetectorOrError::failure("RssiDetector: " + contents.error());
    if (contents.value().records.size() != 1) {
      return DetectorOrError::failure("RssiDetector: unexpected record count");
    }
    std::istringstream is(contents.value().records[0]);
    return try_load(is);
  }
  // Back-compat: pre-durable bare-text detector files.
  std::ifstream is(path);
  if (!is) return DetectorOrError::failure("RssiDetector: cannot open " + path);
  return try_load(is);
}

std::unique_ptr<RssiDetector> RssiDetector::load(std::istream& is) {
  auto result = try_load(is);
  if (!result) throw std::runtime_error("RssiDetector::load: " + result.error());
  return std::move(result).value();
}

std::unique_ptr<RssiDetector> RssiDetector::load_file(const std::string& path) {
  auto result = try_load_file(path);
  if (!result) throw std::runtime_error("RssiDetector::load_file: " + result.error());
  return std::move(result).value();
}

void RssiDetector::save_file(const std::string& path) const {
  global_faults().check_seq(kFaultDetectorSave, durable::path_fault_key(path));
  std::ostringstream payload;
  save(payload);
  durable::DurableWriter writer(kDurableTag, kDurableVersion);
  writer.add_record(payload.str());
  auto committed = writer.commit(path);
  if (!committed) {
    throw std::runtime_error("RssiDetector::save_file: " + committed.error());
  }
}

std::unique_ptr<RssiDetector> RssiDetector::assemble(
    std::vector<ReferencePoint> points, RssiDetectorConfig config,
    gbt::GbtClassifier classifier, std::size_t trained_points) {
  return assemble(std::move(points), config, std::move(classifier), trained_points,
                  BoundingBox{});
}

std::unique_ptr<RssiDetector> RssiDetector::assemble(
    std::vector<ReferencePoint> points, RssiDetectorConfig config,
    gbt::GbtClassifier classifier, std::size_t trained_points,
    const BoundingBox& index_bounds) {
  auto detector =
      std::make_unique<RssiDetector>(std::move(points), config, index_bounds);
  detector->classifier_ = std::move(classifier);
  detector->trained_points_ = trained_points;
  return detector;
}

}  // namespace trajkit::wifi
