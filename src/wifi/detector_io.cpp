// RssiDetector persistence: a text header (config + reference store) followed
// by the serialised GBT classifier.  The store dominates the file size; RSSIs
// are written as compact integer pairs.
//
// Format history:
//   v1  config line = radius top_k theta1 theta2 R tolerance base
//   v2  v1 + the operating threshold appended to the config line
// try_load reads both; save always writes v2.
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "common/fault.hpp"
#include "wifi/detector.hpp"

namespace trajkit::wifi {
namespace {

constexpr const char* kMagicV1 = "trajkit_rssi_detector_v1";
constexpr const char* kMagicV2 = "trajkit_rssi_detector_v2";

using DetectorOrError = Expected<std::unique_ptr<RssiDetector>, std::string>;

std::uint64_t path_key(const std::string& path) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : path) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

void RssiDetector::save(std::ostream& os) const {
  os << kMagicV2 << '\n';
  const auto& conf = config_.confidence;
  os << std::setprecision(17);
  os << conf.reference_radius_m << ' ' << conf.top_k << ' ' << conf.use_theta1 << ' '
     << conf.use_theta2 << ' ' << conf.rpd.counting_radius_m << ' '
     << conf.rpd.rssi_tolerance_db << ' ' << conf.rpd.theta2_base << ' '
     << config_.threshold << '\n';
  os << trained_points_ << '\n';
  os << index_.size() << '\n';
  for (std::size_t i = 0; i < index_.size(); ++i) {
    const ReferencePoint& p = index_[i];
    os << p.pos.east << ' ' << p.pos.north << ' ' << p.traj_id << ' '
       << p.scan.size();
    for (const auto& obs : p.scan) os << ' ' << obs.mac << ' ' << obs.rssi_dbm;
    os << '\n';
  }
  classifier_.save(os);
}

DetectorOrError RssiDetector::try_load(std::istream& is) {
  // Streams carry no path identity; every stream load shares key 0.  The
  // sequential attempt counter still lets fail_first model transient outages.
  if (global_faults().should_fail_seq(kFaultDetectorLoad, 0)) {
    return DetectorOrError::failure("RssiDetector: injected load fault");
  }
  std::string magic;
  if (!(is >> magic) || (magic != kMagicV1 && magic != kMagicV2)) {
    return DetectorOrError::failure("RssiDetector: bad magic (not a detector model)");
  }
  RssiDetectorConfig cfg;
  if (!(is >> cfg.confidence.reference_radius_m >> cfg.confidence.top_k >>
        cfg.confidence.use_theta1 >> cfg.confidence.use_theta2 >>
        cfg.confidence.rpd.counting_radius_m >> cfg.confidence.rpd.rssi_tolerance_db >>
        cfg.confidence.rpd.theta2_base)) {
    return DetectorOrError::failure("RssiDetector: bad config header");
  }
  if (magic == kMagicV2 && !(is >> cfg.threshold)) {
    return DetectorOrError::failure("RssiDetector: bad threshold field");
  }
  std::size_t trained_points = 0;
  std::size_t ref_count = 0;
  if (!(is >> trained_points >> ref_count)) {
    return DetectorOrError::failure("RssiDetector: bad header");
  }
  std::vector<ReferencePoint> refs;
  refs.reserve(ref_count);
  for (std::size_t i = 0; i < ref_count; ++i) {
    ReferencePoint p;
    std::size_t scan_size = 0;
    if (!(is >> p.pos.east >> p.pos.north >> p.traj_id >> scan_size)) {
      return DetectorOrError::failure("RssiDetector: truncated reference point " +
                                      std::to_string(i));
    }
    p.scan.resize(scan_size);
    for (auto& obs : p.scan) {
      if (!(is >> obs.mac >> obs.rssi_dbm)) {
        return DetectorOrError::failure("RssiDetector: truncated scan at point " +
                                        std::to_string(i));
      }
    }
    refs.push_back(std::move(p));
  }
  // Construction and the classifier's own loader validate by throwing; fold
  // those into the non-throwing contract here.
  try {
    auto detector = std::make_unique<RssiDetector>(std::move(refs), cfg);
    detector->classifier_ = gbt::GbtClassifier::load(is);
    detector->trained_points_ = trained_points;
    return DetectorOrError(std::move(detector));
  } catch (const std::exception& e) {
    return DetectorOrError::failure(std::string("RssiDetector: ") + e.what());
  }
}

DetectorOrError RssiDetector::try_load_file(const std::string& path) {
  if (global_faults().should_fail_seq(kFaultDetectorLoad, path_key(path))) {
    return DetectorOrError::failure("RssiDetector: injected load fault for " + path);
  }
  std::ifstream is(path);
  if (!is) return DetectorOrError::failure("RssiDetector: cannot open " + path);
  return try_load(is);
}

std::unique_ptr<RssiDetector> RssiDetector::load(std::istream& is) {
  auto result = try_load(is);
  if (!result) throw std::runtime_error("RssiDetector::load: " + result.error());
  return std::move(result).value();
}

std::unique_ptr<RssiDetector> RssiDetector::load_file(const std::string& path) {
  auto result = try_load_file(path);
  if (!result) throw std::runtime_error("RssiDetector::load_file: " + result.error());
  return std::move(result).value();
}

void RssiDetector::save_file(const std::string& path) const {
  global_faults().check_seq(kFaultDetectorSave, path_key(path));
  std::ofstream os(path);
  if (!os) throw std::runtime_error("RssiDetector::save_file: cannot open " + path);
  save(os);
}

}  // namespace trajkit::wifi
