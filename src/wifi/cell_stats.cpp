#include "wifi/cell_stats.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace trajkit::wifi {
namespace {

void append_num(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

CellStatsGrid::CellStatsGrid(double cell_size_m) : cell_size_m_(cell_size_m) {
  if (!(cell_size_m > 0.0)) {
    throw std::invalid_argument("CellStatsGrid: cell size must be positive");
  }
}

CellStatsGrid::CellKey CellStatsGrid::cell_of(const Enu& pos) const {
  return {static_cast<std::int64_t>(std::floor(pos.east / cell_size_m_)),
          static_cast<std::int64_t>(std::floor(pos.north / cell_size_m_))};
}

const CellStatsGrid::Cell* CellStatsGrid::cell_at(const Enu& pos) const {
  const auto it = cells_.find(cell_of(pos));
  return it == cells_.end() ? nullptr : &it->second;
}

void CellStatsGrid::add(const ReferencePoint& point) {
  Cell& cell = cells_[cell_of(point.pos)];
  ++cell.count;
  ++points_;
  for (const auto& obs : point.scan) {
    ApCellStats& ap = cell.aps[obs.mac];
    const double rssi = static_cast<double>(obs.rssi_dbm);
    ++ap.count;
    ap.sum += rssi;
    ap.sumsq += rssi * rssi;
  }
}

std::string CellStatsGrid::serialize() const {
  std::string out = "cellstats 1 ";
  append_num(out, cell_size_m_);
  out += ' ';
  out += std::to_string(points_);
  out += ' ';
  out += std::to_string(cells_.size());
  out += '\n';
  for (const auto& [key, cell] : cells_) {
    out += std::to_string(key.first);
    out += ' ';
    out += std::to_string(key.second);
    out += ' ';
    out += std::to_string(cell.count);
    out += ' ';
    out += std::to_string(cell.aps.size());
    for (const auto& [mac, ap] : cell.aps) {
      out += ' ';
      out += std::to_string(mac);
      out += ' ';
      out += std::to_string(ap.count);
      out += ' ';
      append_num(out, ap.sum);
      out += ' ';
      append_num(out, ap.sumsq);
    }
    out += '\n';
  }
  return out;
}

Expected<CellStatsGrid, std::string> CellStatsGrid::deserialize(
    const std::string& text) {
  using Result = Expected<CellStatsGrid, std::string>;
  std::istringstream is(text);
  std::string magic;
  int version = 0;
  double cell_size = 0.0;
  std::uint64_t points = 0;
  std::size_t cell_count = 0;
  if (!(is >> magic >> version >> cell_size >> points >> cell_count) ||
      magic != "cellstats" || version != 1) {
    return Result::failure("cell stats: bad header");
  }
  if (!std::isfinite(cell_size) || cell_size <= 0.0) {
    return Result::failure("cell stats: implausible cell size");
  }
  // A cell holds at least one point, so the claimed counts bound each other.
  if (cell_count > points) {
    return Result::failure("cell stats: more cells than points");
  }
  CellStatsGrid grid(cell_size);
  grid.points_ = points;
  std::uint64_t total = 0;
  for (std::size_t c = 0; c < cell_count; ++c) {
    CellKey key;
    Cell cell;
    std::size_t ap_count = 0;
    if (!(is >> key.first >> key.second >> cell.count >> ap_count)) {
      return Result::failure("cell stats: truncated cell record");
    }
    for (std::size_t a = 0; a < ap_count; ++a) {
      std::uint64_t mac = 0;
      ApCellStats ap;
      if (!(is >> mac >> ap.count >> ap.sum >> ap.sumsq)) {
        return Result::failure("cell stats: truncated AP record");
      }
      if (!std::isfinite(ap.sum) || !std::isfinite(ap.sumsq)) {
        return Result::failure("cell stats: non-finite accumulator");
      }
      if (!cell.aps.emplace(mac, ap).second) {
        return Result::failure("cell stats: duplicate AP in cell");
      }
    }
    total += cell.count;
    if (!grid.cells_.emplace(key, std::move(cell)).second) {
      return Result::failure("cell stats: duplicate cell");
    }
  }
  if (total != points) {
    return Result::failure("cell stats: cell counts do not sum to point count");
  }
  return Result(std::move(grid));
}

std::uint64_t CellStatsGrid::checksum() const {
  const std::string text = serialize();
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace trajkit::wifi
