// RSSI probability distributions around historical points (Eq. 4) and the
// reliability weight theta_2 (Eq. 6).
//
// For a historical point H, the RSSIs of an AP observed inside the counting
// circle C_H(R) are treated as a discrete random variable;
// RPD_H^mac(x) = |{Q in C_H(R) : Q.rssi(mac) == x}| / |C_H(R)|.
//
// Deriving a point's counting neighbourhood is the expensive part (a radius
// query plus a histogram over every scan in it), and the detector probes the
// same reference points for every AP of every verified trajectory point — so
// the derived statistics are cached.  The cache is *pluggable*: the default
// DenseRpdStatsCache keeps one lazily-built slot per reference point (right
// for one-shot experiments), while the serving layer substitutes a bounded,
// shard-locked LRU shared across requests (serve/rpd_lru_cache.hpp).  Cached
// stats are a pure function of the immutable reference index, so the cache
// policy can never change a verdict — only how often stats are rebuilt.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "wifi/refindex.hpp"

namespace trajkit::wifi {

struct RpdParams {
  double counting_radius_m = 3.0;  ///< the paper's R = 6 sigma = 3 m
  int rssi_tolerance_db = 0;       ///< 0 = exact match (Eq. 4); >0 = smoothed
  double theta2_base = 0.9;        ///< the paper's 1/t = 0.9 in Eq. 6
};

/// Derived statistics of one reference point's counting circle C_H(R): the
/// membership count (Eq. 4 denominator) and, per AP heard inside the circle,
/// its RSSI histogram (Eq. 4 numerators).  Immutable once built.
struct RpdPointStats {
  std::size_t neighbour_count = 0;
  std::unordered_map<std::uint64_t, std::unordered_map<int, std::uint32_t>> histograms;
};

/// Cache of RpdPointStats keyed by reference-point index.  Implementations
/// must be safe for concurrent get_or_build calls; returned pointers remain
/// valid after eviction (shared ownership).  Because the stats are pure
/// functions of the reference index, racing builders may duplicate work but
/// always produce identical values.
class RpdStatsCache {
 public:
  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    double hit_rate() const {
      const double total = static_cast<double>(hits + misses);
      return total > 0.0 ? static_cast<double>(hits) / total : 0.0;
    }
  };

  virtual ~RpdStatsCache() = default;

  /// Stats for reference point `h`, building them via `build` on a miss.
  virtual std::shared_ptr<const RpdPointStats> get_or_build(
      std::size_t h, const std::function<RpdPointStats()>& build) = 0;

  /// Drop the cached stats of exactly these reference points (the online
  /// ingestion path: a newly appended crowd scan only perturbs the counting
  /// circles that contain it, so only those entries go stale).  Readers that
  /// already fetched a shared_ptr keep their (old-epoch) value; the next
  /// get_or_build rebuilds.  Default: nothing cached is ever stale (caches
  /// over an immutable index need no invalidation path).
  virtual void invalidate(const std::vector<std::size_t>& keys) { (void)keys; }

  virtual CacheStats stats() const = 0;
};

/// Default cache: one slot per reference point, built lazily under a striped
/// mutex and published with an acquire/release flag, never evicted.  Memory
/// grows with the number of *touched* reference points — fine for
/// experiments, unbounded for a long-lived server.  invalidate() resets the
/// named slots; unlike the serve-layer LRU it is NOT safe against concurrent
/// get_or_build (the lock-free fast path may copy a slot being reset), so
/// callers invalidate between evaluation rounds — the experiment-side
/// incremental-refresh shape.  Serving hot-swaps use carry-forward on the
/// sharded LRU instead (serve/rpd_lru_cache.hpp).
class DenseRpdStatsCache final : public RpdStatsCache {
 public:
  explicit DenseRpdStatsCache(std::size_t slots);

  std::shared_ptr<const RpdPointStats> get_or_build(
      std::size_t h, const std::function<RpdPointStats()>& build) override;
  void invalidate(const std::vector<std::size_t>& keys) override;
  CacheStats stats() const override;

 private:
  struct Slot {
    std::atomic<bool> ready{false};
    std::shared_ptr<const RpdPointStats> value;
  };

  std::vector<Slot> slots_;
  std::array<std::mutex, 64> stripes_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> invalidations_{0};
};

class RpdEstimator {
 public:
  /// `index` must outlive the estimator.  `cache` defaults to a fresh
  /// DenseRpdStatsCache sized to the index.
  RpdEstimator(const ReferenceIndex& index, RpdParams params = {},
               std::shared_ptr<RpdStatsCache> cache = nullptr);

  /// The shared lookup path: fetch (building if needed) the cached counting
  /// statistics of reference point `h`.  Callers that probe several RPD
  /// values of the same point should fetch once and use the *_from helpers.
  std::shared_ptr<const RpdPointStats> point_stats(std::size_t h) const;

  /// RPD_H^mac(x) evaluated on already-fetched stats.
  double rpd_from(const RpdPointStats& stats, std::uint64_t mac, int rssi) const;
  /// theta_2(H) evaluated on already-fetched stats.
  double theta2_from(const RpdPointStats& stats) const;

  /// Convenience per-index entry points (one cache probe each).
  double rpd(std::size_t h, std::uint64_t mac, int rssi) const;
  std::size_t counting_size(std::size_t h) const;
  double density(std::size_t h) const;
  double theta2(std::size_t h) const;

  /// Swap the backing stats cache (e.g. for a serve-layer shared LRU).  Not
  /// thread-safe with respect to concurrent lookups: call before serving.
  void set_cache(std::shared_ptr<RpdStatsCache> cache);
  const RpdStatsCache& cache() const { return *cache_; }

  const RpdParams& params() const { return params_; }
  const ReferenceIndex& index() const { return *index_; }

 private:
  RpdPointStats build_stats(std::size_t h) const;
  double density_of(const RpdPointStats& stats) const;

  const ReferenceIndex* index_;
  RpdParams params_;
  std::shared_ptr<RpdStatsCache> cache_;
};

}  // namespace trajkit::wifi
