// RSSI probability distributions around historical points (Eq. 4) and the
// reliability weight theta_2 (Eq. 6).
//
// For a historical point H, the RSSIs of an AP observed inside the counting
// circle C_H(R) are treated as a discrete random variable;
// RPD_H^mac(x) = |{Q in C_H(R) : Q.rssi(mac) == x}| / |C_H(R)|.
// The estimator caches each historical point's counting neighbourhood on
// first use, since the detector probes the same reference points for every
// AP of every verified trajectory point.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "wifi/refindex.hpp"

namespace trajkit::wifi {

struct RpdParams {
  double counting_radius_m = 3.0;  ///< the paper's R = 6 sigma = 3 m
  int rssi_tolerance_db = 0;       ///< 0 = exact match (Eq. 4); >0 = smoothed
  double theta2_base = 0.9;        ///< the paper's 1/t = 0.9 in Eq. 6
};

class RpdEstimator {
 public:
  /// `index` must outlive the estimator.
  RpdEstimator(const ReferenceIndex& index, RpdParams params = {});

  /// RPD_H^mac(x): probability that AP `mac` reads `rssi` near reference
  /// point `h` (an index into the ReferenceIndex).
  double rpd(std::size_t h, std::uint64_t mac, int rssi) const;

  /// Number of historical points in C_H(R) (the Eq. 4 denominator).
  std::size_t counting_size(std::size_t h) const;

  /// Density eps = |C_H(R)| / (pi R^2), points per square metre.
  double density(std::size_t h) const;

  /// Reliability weight theta_2(H) = 1 - base^eps (Eq. 6, rewritten with the
  /// paper's 1/t = base): more points in the counting area => closer to 1.
  double theta2(std::size_t h) const;

  const RpdParams& params() const { return params_; }
  const ReferenceIndex& index() const { return *index_; }

 private:
  /// Cached per-reference-point statistics: the C_H(R) membership count and,
  /// per AP heard in the counting area, its RSSI histogram.  Built lazily on
  /// first probe of a point — detectors only ever touch reference points near
  /// verified trajectories.
  ///
  /// Thread safety: detectors probe the cache concurrently from parallel
  /// evaluation (common/parallel.hpp), so each entry is published with an
  /// acquire/release `ready` flag and built under a striped mutex.  The
  /// cached value is a pure function of the (immutable) reference index, so
  /// lazy filling does not affect determinism.
  struct PointStats {
    std::atomic<bool> ready{false};
    std::size_t neighbour_count = 0;
    std::unordered_map<std::uint64_t, std::unordered_map<int, std::uint32_t>> histograms;
  };

  const PointStats& stats(std::size_t h) const;

  const ReferenceIndex* index_;
  RpdParams params_;
  mutable std::vector<PointStats> cache_;
  mutable std::array<std::mutex, 64> stripes_;
};

}  // namespace trajkit::wifi
