// The paper's prediction function J : (T, H) -> {0, 1}  (Sec. III-B/C).
//
// Wraps the whole defense pipeline: the crowdsourced ReferenceIndex, the
// RPD/confidence estimators and an XGBoost-style classifier over the Eq. 8
// feature vectors.  1 = the trajectory is judged real, 0 = forged.
//
// The call surface is one entry point: analyze() runs the reference-index
// queries once per point and returns everything a caller can want — the
// verdict, the classifier probability, the Eq. 8 feature vector and the
// per-point Eq. 7 suspicion scores.  Geo-sharded deployments split the same
// pass into segment_features() + classify_features().  (The pre-serving
// per-question methods — features / predict_proba / verify / point_scores —
// re-walked the index once each and are gone.)
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/durable/artifact_store.hpp"
#include "common/expected.hpp"
#include "gbt/booster.hpp"
#include "wifi/features.hpp"

namespace trajkit::wifi {

/// Fault points (common/fault) on the persistence path, keyed by a hash of
/// the stream/path identity.  Armed with fail_first = N, the first N load
/// attempts fail — the "model store briefly unreachable" shape; a large N
/// makes the model permanently unloadable (degraded-start serving).
inline constexpr const char* kFaultDetectorLoad = "wifi.detector_load";
inline constexpr const char* kFaultDetectorSave = "wifi.detector_save";

struct RssiDetectorConfig {
  ConfidenceParams confidence;
  gbt::GbtConfig classifier;
  /// Operating threshold of J: verdict = 1 iff p_real >= threshold.  Carried
  /// through save/load so a deployed detector keeps the threshold it was
  /// tuned with instead of every call site hard-coding 0.5.
  double threshold = 0.5;
};

/// Everything the detector can say about one upload, computed in one pass.
struct VerdictReport {
  int verdict = 0;       ///< J: 1 = judged real, 0 = judged forged
  double p_real = 0.0;   ///< classifier confidence that the upload is real
  double threshold = 0.5;  ///< operating threshold that produced `verdict`
  std::vector<double> features;      ///< Eq. 8 feature vector
  std::vector<double> point_scores;  ///< per-point mean Eq. 7 confidence
                                     ///< (localises *which stretch* is forged)

  /// Deterministic text rendering of the payload (%.17g, so doubles
  /// round-trip exactly).  Used by the determinism tests and the serving
  /// checksum; deliberately excludes nothing — two reports are byte-equal
  /// iff their canonical strings are.
  std::string canonical_string() const;
};

class RssiDetector {
 public:
  /// Take ownership of the provider's historical dataset.
  RssiDetector(std::vector<ReferencePoint> history, RssiDetectorConfig config = {});

  /// Same, with an explicit reference-index grid extent.  A geo-shard built
  /// over a slice of a global reference set passes the full set's
  /// ReferenceIndex::natural_bounds here so its per-point confidence sums
  /// accumulate in the unsharded grid order (bitwise-equal features).
  RssiDetector(std::vector<ReferencePoint> history, RssiDetectorConfig config,
               const BoundingBox& index_bounds);

  /// The reference index pins internal pointers; moving or copying a live
  /// detector would leave its estimators dangling, so both are disabled.
  /// Heap-allocate (as load()/try_load() do) when ownership must move.
  RssiDetector(const RssiDetector&) = delete;
  RssiDetector& operator=(const RssiDetector&) = delete;

  /// Train the verdict classifier on labelled uploads (1 = real, 0 = fake).
  /// All uploads must have the same point count.
  void train(const std::vector<ScannedUpload>& uploads, const std::vector<int>& labels);

  /// Single-pass verdict: one reference-index walk per point produces the
  /// features, the classifier probability, the configured-threshold verdict
  /// and the per-point suspicion scores together.  Requires train() or a
  /// loaded model; throws std::logic_error otherwise.
  VerdictReport analyze(const ScannedUpload& upload) const;

  /// The per-point half of analyze(): fills the Eq. 8 feature slots
  /// (2 * top_k per point) and the per-point suspicion scores without running
  /// the classifier.  Untrained-safe and length-agnostic — this is the unit
  /// of work a geo-shard evaluates for its segment of a split trajectory;
  /// the router concatenates segment features in point order and applies the
  /// classifier once.
  void segment_features(const ScannedUpload& upload, std::vector<double>& features,
                        std::vector<double>& point_scores) const {
    analyze_points(upload, features, point_scores);
  }

  /// Classifier tail of analyze() over an already-merged feature vector.
  /// `features` must be the concatenation the per-point pass produces for a
  /// trained_points()-long upload.
  VerdictReport classify_features(std::vector<double> features,
                                  std::vector<double> point_scores) const;

  const ReferenceIndex& index() const { return index_; }
  const ConfidenceEstimator& confidence() const { return estimator_; }
  const gbt::GbtClassifier& classifier() const { return classifier_; }
  const RssiDetectorConfig& config() const { return config_; }

  /// Swap the RPD stats cache (serve-layer shared bounded LRU).  The cache
  /// only memoises pure functions of the reference index, so this can never
  /// change a verdict.  Not thread-safe against in-flight analyze() calls.
  void set_rpd_cache(std::shared_ptr<RpdStatsCache> cache);

  /// Persist the full detector — configuration, crowdsourced reference store
  /// and the trained classifier — so a provider can train once and deploy.
  void save(std::ostream& os) const;
  void save_file(const std::string& path) const;

  /// Non-throwing loaders, the primary deserialisation path: a serving
  /// process gets either a detector or a diagnostic string.  Understands the
  /// current v2 format and the threshold-less v1 format (threshold -> 0.5).
  static Expected<std::unique_ptr<RssiDetector>, std::string> try_load(
      std::istream& is);
  static Expected<std::unique_ptr<RssiDetector>, std::string> try_load_file(
      const std::string& path);

  /// Throwing convenience wrappers over try_load / try_load_file.
  static std::unique_ptr<RssiDetector> load(std::istream& is);
  static std::unique_ptr<RssiDetector> load_file(const std::string& path);

  /// Build a detector from separately-persisted parts: a reference store
  /// (e.g. recovered from the crowd store's snapshot + journal) plus a
  /// classifier trained elsewhere.  The caller vouches that `classifier` was
  /// trained on uploads of `trained_points` points over features compatible
  /// with `config`.
  static std::unique_ptr<RssiDetector> assemble(std::vector<ReferencePoint> points,
                                                RssiDetectorConfig config,
                                                gbt::GbtClassifier classifier,
                                                std::size_t trained_points);

  /// assemble() with an explicit reference-index extent (see the
  /// bounds-taking constructor): the shard-slice deployment shape.
  static std::unique_ptr<RssiDetector> assemble(std::vector<ReferencePoint> points,
                                                RssiDetectorConfig config,
                                                gbt::GbtClassifier classifier,
                                                std::size_t trained_points,
                                                const BoundingBox& index_bounds);

  /// Upload length the trained classifier expects (0 = untrained).
  std::size_t trained_points() const { return trained_points_; }

 private:
  /// The shared per-point pass: fills the Eq. 8 features and the per-point
  /// scores from one point_confidence() walk.  Untrained-safe.
  void analyze_points(const ScannedUpload& upload, std::vector<double>& features,
                      std::vector<double>& point_scores) const;

  ReferenceIndex index_;
  RssiDetectorConfig config_;
  ConfidenceEstimator estimator_;
  gbt::GbtClassifier classifier_;
  std::size_t trained_points_ = 0;  ///< upload length the classifier expects
};

/// Flatten historical trajectories (positions + scans) into reference points.
std::vector<ReferencePoint> flatten_history(
    const std::vector<ScannedUpload>& historical);

}  // namespace trajkit::wifi

namespace trajkit::durable {

/// Detector artifacts for ArtifactStore::open<RssiDetector>/publish: the
/// payload is the detector's own stream format (save/try_load), so epoch
/// files and legacy single-file models stay byte-compatible.  Value is a
/// unique_ptr because a live detector pins internal pointers and cannot move.
template <>
struct ArtifactCodec<wifi::RssiDetector> {
  using Value = std::unique_ptr<wifi::RssiDetector>;
  static void encode(const wifi::RssiDetector& value, std::ostream& os) {
    value.save(os);
  }
  static Expected<Value, std::string> decode(std::istream& is) {
    return wifi::RssiDetector::try_load(is);
  }
};

}  // namespace trajkit::durable
