// The paper's prediction function J : (T, H) -> {0, 1}  (Sec. III-B/C).
//
// Wraps the whole defense pipeline: the crowdsourced ReferenceIndex, the
// RPD/confidence estimators and an XGBoost-style classifier over the Eq. 8
// feature vectors.  1 = the trajectory is judged real, 0 = forged.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "gbt/booster.hpp"
#include "wifi/features.hpp"

namespace trajkit::wifi {

struct RssiDetectorConfig {
  ConfidenceParams confidence;
  gbt::GbtConfig classifier;
};

class RssiDetector {
 public:
  /// Take ownership of the provider's historical dataset.
  RssiDetector(std::vector<ReferencePoint> history, RssiDetectorConfig config = {});

  /// Train the verdict classifier on labelled uploads (1 = real, 0 = fake).
  /// All uploads must have the same point count.
  void train(const std::vector<ScannedUpload>& uploads, const std::vector<int>& labels);

  /// Eq. 8 features of one upload (exposed for analysis / custom models).
  std::vector<double> features(const ScannedUpload& upload) const;

  /// Confidence that the upload is real, in [0, 1].
  double predict_proba(const ScannedUpload& upload) const;

  /// The J function: 1 = real, 0 = forged.
  int verify(const ScannedUpload& upload, double threshold = 0.5) const;

  /// Per-point suspicion localisation: the mean Eq. 7 confidence of each
  /// point's top-k APs (higher = better supported by the crowd).  Lets an
  /// auditor see *which stretch* of an upload disagrees with history, e.g.
  /// when only part of a trip was forged.  Independent of the classifier.
  std::vector<double> point_scores(const ScannedUpload& upload) const;

  const ReferenceIndex& index() const { return index_; }
  const ConfidenceEstimator& confidence() const { return estimator_; }
  const gbt::GbtClassifier& classifier() const { return classifier_; }

  /// Persist the full detector — configuration, crowdsourced reference store
  /// and the trained classifier — so a provider can train once and deploy.
  void save(std::ostream& os) const;
  static std::unique_ptr<RssiDetector> load(std::istream& is);
  void save_file(const std::string& path) const;
  static std::unique_ptr<RssiDetector> load_file(const std::string& path);

 private:
  ReferenceIndex index_;
  ConfidenceParams confidence_params_;
  ConfidenceEstimator estimator_;
  gbt::GbtClassifier classifier_;
  std::size_t trained_points_ = 0;  ///< upload length the classifier expects
};

/// Flatten historical trajectories (positions + scans) into reference points.
std::vector<ReferencePoint> flatten_history(
    const std::vector<ScannedUpload>& historical);

}  // namespace trajkit::wifi
