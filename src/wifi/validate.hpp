// Validation of untrusted wifi-layer inputs.
//
// Uploads and crowdsourced scans arrive from outside the trust boundary (the
// paper's threat model is exactly that the claimed data is forged), so before
// anything reaches the reference index or the journal it passes through these
// checks: coordinates must be finite and within a plausible ENU envelope,
// RSSIs within physical bounds, AP lists bounded.  Every rejection is a
// diagnostic string via Expected — no exceptions, no partial acceptance.
#pragma once

#include <string>

#include "common/expected.hpp"
#include "wifi/features.hpp"
#include "wifi/refindex.hpp"

namespace trajkit::wifi {

/// Physical bounds on a believable RSSI.  The simulator's visibility floor is
/// -85 dBm and real hardware bottoms out near -100; +30 dBm would be a
/// transmitter pressed against the antenna.  Anything outside is garbage.
inline constexpr int kMinValidRssiDbm = -120;
inline constexpr int kMaxValidRssiDbm = 30;

/// Cap on APs per scan; dense urban scans see dozens, never hundreds.
inline constexpr std::size_t kMaxScanAps = 512;

/// Cap on points per upload (a multi-hour trace at 1 Hz is ~10^4).
inline constexpr std::size_t kMaxUploadPoints = 100'000;

/// Envelope on |east| / |north| in metres: generously past any single ENU
/// frame's validity (half the Earth's circumference), tight enough to reject
/// coordinates that are clearly not metres.
inline constexpr double kMaxEnuAbsM = 2.1e7;

/// Checks one scan: AP count within bounds and every RSSI physical.
Expected<bool, std::string> validate_scan(const WifiScan& scan);

/// Checks one crowdsourced reference point: finite in-envelope position plus
/// a valid scan.
Expected<bool, std::string> validate_reference_point(const ReferencePoint& p);

/// Checks one uploaded trajectory: non-empty, positions/scans aligned, size
/// bounded, every position finite and in-envelope, every scan valid.
Expected<bool, std::string> validate_upload(const ScannedUpload& upload);

}  // namespace trajkit::wifi
