// Validation of untrusted wifi-layer inputs.
//
// Uploads and crowdsourced scans arrive from outside the trust boundary (the
// paper's threat model is exactly that the claimed data is forged), so before
// anything reaches the reference index or the journal it passes through these
// checks: coordinates must be finite and within a plausible ENU envelope,
// RSSIs within physical bounds, AP lists bounded.  Every rejection is a
// diagnostic string via Expected — no exceptions, no partial acceptance.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "common/expected.hpp"
#include "wifi/features.hpp"
#include "wifi/provenance.hpp"
#include "wifi/refindex.hpp"

namespace trajkit::wifi {

/// Physical bounds on a believable RSSI.  The simulator's visibility floor is
/// -85 dBm and real hardware bottoms out near -100; +30 dBm would be a
/// transmitter pressed against the antenna.  Anything outside is garbage.
inline constexpr int kMinValidRssiDbm = -120;
inline constexpr int kMaxValidRssiDbm = 30;

/// Cap on APs per scan; dense urban scans see dozens, never hundreds.
inline constexpr std::size_t kMaxScanAps = 512;

/// Cap on points per upload (a multi-hour trace at 1 Hz is ~10^4).
inline constexpr std::size_t kMaxUploadPoints = 100'000;

/// Envelope on |east| / |north| in metres: generously past any single ENU
/// frame's validity (half the Earth's circumference), tight enough to reject
/// coordinates that are clearly not metres.
inline constexpr double kMaxEnuAbsM = 2.1e7;

/// Checks one scan: AP count within bounds and every RSSI physical.
Expected<bool, std::string> validate_scan(const WifiScan& scan);

/// Checks one crowdsourced reference point: finite in-envelope position plus
/// a valid scan.
Expected<bool, std::string> validate_reference_point(const ReferencePoint& p);

/// Checks one uploaded trajectory: non-empty, positions/scans aligned, size
/// bounded, every position finite and in-envelope, every scan valid.
Expected<bool, std::string> validate_upload(const ScannedUpload& upload);

/// Per-uploader ingestion rate cap.  Shape bounds (above) limit what one
/// record can claim; this limits how *many* records one identity can land in
/// a window, so a single Sybil cannot flood a cell's statistics between two
/// reputation checkpoints.  The window is measured in accepted appends (the
/// store's logical clock), not wall time, so admission decisions replay
/// deterministically.  0 in either field disables the cap.
struct UploaderRatePolicy {
  std::uint64_t window_appends = 0;    ///< window length, in accepted appends
  std::uint64_t max_per_uploader = 0;  ///< admissions per uploader per window
  bool enabled() const { return window_appends > 0 && max_per_uploader > 0; }
};

/// Sliding-window admission over (uploader, append ordinal).  Anonymous
/// uploads bypass the cap (no identity to account them to).  Not
/// thread-safe; the store serialises appends.
class UploaderRateLimiter {
 public:
  explicit UploaderRateLimiter(UploaderRatePolicy policy = {}) : policy_(policy) {}

  /// Admit one upload by `uploader` at append ordinal `tick` (monotone
  /// non-decreasing across calls).  Expected-based rejection names the
  /// uploader and the cap.  An admitted upload consumes window budget;
  /// a rejected one does not.
  Expected<bool, std::string> admit(UploaderId uploader, std::uint64_t tick);

  const UploaderRatePolicy& policy() const { return policy_; }

 private:
  UploaderRatePolicy policy_;
  std::map<UploaderId, std::deque<std::uint64_t>> admitted_;  ///< ticks in window
};

}  // namespace trajkit::wifi
