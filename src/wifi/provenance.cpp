#include "wifi/provenance.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace trajkit::wifi {
namespace {

void append_num(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

ProvenanceGrid::ProvenanceGrid(double cell_size_m) : cell_size_m_(cell_size_m) {
  if (!(cell_size_m > 0.0)) {
    throw std::invalid_argument("ProvenanceGrid: cell size must be positive");
  }
}

ProvenanceGrid::CellKey ProvenanceGrid::cell_of(const Enu& pos) const {
  return {static_cast<std::int64_t>(std::floor(pos.east / cell_size_m_)),
          static_cast<std::int64_t>(std::floor(pos.north / cell_size_m_))};
}

const ProvenanceGrid::Cell* ProvenanceGrid::cell_at(const Enu& pos) const {
  const auto it = cells_.find(cell_of(pos));
  return it == cells_.end() ? nullptr : &it->second;
}

void ProvenanceGrid::add(const ReferencePoint& point, UploaderId uploader) {
  Cell& cell = cells_[cell_of(point.pos)];
  ++cell.count;
  ++points_;
  for (const auto& obs : point.scan) {
    ApCellStats& ap = cell.aps[obs.mac][uploader];
    const double rssi = static_cast<double>(obs.rssi_dbm);
    ++ap.count;
    ap.sum += rssi;
    ap.sumsq += rssi * rssi;
  }
}

std::vector<double> ProvenanceGrid::uploader_means(const Enu& pos, std::uint64_t mac,
                                                   UploaderId exclude) const {
  std::vector<double> means;
  const Cell* cell = cell_at(pos);
  if (cell == nullptr) return means;
  const auto it = cell->aps.find(mac);
  if (it == cell->aps.end()) return means;
  means.reserve(it->second.size());
  for (const auto& [uploader, stats] : it->second) {
    if (uploader == exclude && exclude != kAnonymousUploader) continue;
    means.push_back(stats.mean());
  }
  return means;
}

std::string ProvenanceGrid::serialize() const {
  std::string out = "provgrid 1 ";
  append_num(out, cell_size_m_);
  out += ' ';
  out += std::to_string(points_);
  out += ' ';
  out += std::to_string(cells_.size());
  out += '\n';
  for (const auto& [key, cell] : cells_) {
    out += std::to_string(key.first);
    out += ' ';
    out += std::to_string(key.second);
    out += ' ';
    out += std::to_string(cell.count);
    out += ' ';
    out += std::to_string(cell.aps.size());
    for (const auto& [mac, uploaders] : cell.aps) {
      out += ' ';
      out += std::to_string(mac);
      out += ' ';
      out += std::to_string(uploaders.size());
      for (const auto& [uploader, ap] : uploaders) {
        out += ' ';
        out += std::to_string(uploader);
        out += ' ';
        out += std::to_string(ap.count);
        out += ' ';
        append_num(out, ap.sum);
        out += ' ';
        append_num(out, ap.sumsq);
      }
    }
    out += '\n';
  }
  return out;
}

Expected<ProvenanceGrid, std::string> ProvenanceGrid::deserialize(
    const std::string& text) {
  using Result = Expected<ProvenanceGrid, std::string>;
  std::istringstream is(text);
  std::string magic;
  int version = 0;
  double cell_size = 0.0;
  std::uint64_t points = 0;
  std::size_t cell_count = 0;
  if (!(is >> magic >> version >> cell_size >> points >> cell_count) ||
      magic != "provgrid" || version != 1) {
    return Result::failure("provenance grid: bad header");
  }
  if (!std::isfinite(cell_size) || cell_size <= 0.0) {
    return Result::failure("provenance grid: implausible cell size");
  }
  if (cell_count > points) {
    return Result::failure("provenance grid: more cells than points");
  }
  ProvenanceGrid grid(cell_size);
  grid.points_ = points;
  std::uint64_t total = 0;
  for (std::size_t c = 0; c < cell_count; ++c) {
    CellKey key;
    Cell cell;
    std::size_t ap_count = 0;
    if (!(is >> key.first >> key.second >> cell.count >> ap_count)) {
      return Result::failure("provenance grid: truncated cell record");
    }
    for (std::size_t a = 0; a < ap_count; ++a) {
      std::uint64_t mac = 0;
      std::size_t uploader_count = 0;
      if (!(is >> mac >> uploader_count)) {
        return Result::failure("provenance grid: truncated AP record");
      }
      std::map<UploaderId, ApCellStats> uploaders;
      for (std::size_t u = 0; u < uploader_count; ++u) {
        UploaderId uploader = 0;
        ApCellStats ap;
        if (!(is >> uploader >> ap.count >> ap.sum >> ap.sumsq)) {
          return Result::failure("provenance grid: truncated uploader record");
        }
        if (!std::isfinite(ap.sum) || !std::isfinite(ap.sumsq)) {
          return Result::failure("provenance grid: non-finite accumulator");
        }
        if (!uploaders.emplace(uploader, ap).second) {
          return Result::failure("provenance grid: duplicate uploader in AP");
        }
      }
      if (uploaders.empty()) {
        return Result::failure("provenance grid: AP with no uploaders");
      }
      if (!cell.aps.emplace(mac, std::move(uploaders)).second) {
        return Result::failure("provenance grid: duplicate AP in cell");
      }
    }
    total += cell.count;
    if (!grid.cells_.emplace(key, std::move(cell)).second) {
      return Result::failure("provenance grid: duplicate cell");
    }
  }
  if (total != points) {
    return Result::failure("provenance grid: cell counts do not sum to point count");
  }
  return Result(std::move(grid));
}

std::uint64_t ProvenanceGrid::checksum() const {
  const std::string text = serialize();
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

double trimmed_mean(std::vector<double> values, double trim_fraction) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  if (trim_fraction >= 0.5) {
    // Median: the maximally-trimmed estimate.
    return n % 2 == 1 ? values[n / 2]
                      : 0.5 * (values[n / 2 - 1] + values[n / 2]);
  }
  std::size_t trim = trim_fraction > 0.0
                         ? static_cast<std::size_t>(std::floor(trim_fraction *
                                                               static_cast<double>(n)))
                         : 0;
  if (2 * trim >= n) trim = (n - 1) / 2;
  double sum = 0.0;
  for (std::size_t i = trim; i < n - trim; ++i) sum += values[i];
  return sum / static_cast<double>(n - 2 * trim);
}

RobustCellAggregator::RobustCellAggregator(const CellStatsGrid& pooled,
                                           const ProvenanceGrid& provenance,
                                           RobustAggregationParams params)
    : pooled_(&pooled), provenance_(&provenance), params_(params) {
  if (params_.trim_fraction < 0.0 || params_.trim_fraction > 0.5) {
    throw std::invalid_argument(
        "RobustCellAggregator: trim fraction must be in [0, 0.5]");
  }
  if (pooled.cell_size_m() != provenance.cell_size_m()) {
    throw std::invalid_argument(
        "RobustCellAggregator: grids disagree on cell size");
  }
}

bool RobustCellAggregator::estimate(const Enu& pos, std::uint64_t mac,
                                    double* out) const {
  if (params_.trim_fraction <= 0.0) {
    // The exact-mean oracle path: identical arithmetic (and identical
    // accumulators) to the pre-provenance pooled estimate.
    const CellStatsGrid::Cell* cell = pooled_->cell_at(pos);
    if (cell == nullptr) return false;
    const auto it = cell->aps.find(mac);
    if (it == cell->aps.end() || it->second.count == 0) return false;
    if (out != nullptr) *out = it->second.mean();
    return true;
  }
  const std::vector<double> means = provenance_->uploader_means(pos, mac);
  if (means.size() < params_.min_uploaders) return false;
  if (out != nullptr) *out = trimmed_mean(means, params_.trim_fraction);
  return true;
}

bool RobustCellAggregator::consensus_excluding(const Enu& pos, std::uint64_t mac,
                                               UploaderId exclude,
                                               double* out) const {
  const std::vector<double> means = provenance_->uploader_means(pos, mac, exclude);
  if (means.size() < params_.min_uploaders) return false;
  // Witness-weighted even at trim = 0: a reputation consensus dominated by
  // whoever flooded the most observations would hand Sybils the scorer.
  if (out != nullptr) *out = trimmed_mean(means, params_.trim_fraction);
  return true;
}

}  // namespace trajkit::wifi
