// WiFi scan vocabulary shared between the simulator (which produces scans)
// and the detector (which verifies them).
//
// A scan is the client-side observation at one trajectory point: the paper's
// P_i = [loc_i, RSSI_i, MAC_i] carries the RSSIs and MACs of the m APs heard
// at that point.  RSSIs are integer dBm, as reported by real drivers.
#pragma once

#include <cstdint>
#include <vector>

namespace trajkit::wifi {

/// One observed AP in a scan.
struct ApObservation {
  std::uint64_t mac = 0;
  int rssi_dbm = 0;

  friend bool operator==(const ApObservation&, const ApObservation&) = default;
};

/// A scan: visible APs sorted by descending RSSI (strongest first).
using WifiScan = std::vector<ApObservation>;

/// RSSI of `mac` within `scan`, or std::nullopt-like sentinel: returns true
/// and writes `out` when present.
bool scan_lookup(const WifiScan& scan, std::uint64_t mac, int& out);

}  // namespace trajkit::wifi
