#include "wifi/validate.hpp"

#include <cmath>

namespace trajkit::wifi {
namespace {

using Valid = Expected<bool, std::string>;

bool position_ok(const Enu& pos) {
  return std::isfinite(pos.east) && std::isfinite(pos.north) &&
         std::fabs(pos.east) <= kMaxEnuAbsM && std::fabs(pos.north) <= kMaxEnuAbsM;
}

}  // namespace

Valid validate_scan(const WifiScan& scan) {
  if (scan.size() > kMaxScanAps) {
    return Valid::failure("scan: too many APs (" + std::to_string(scan.size()) + ")");
  }
  for (const auto& obs : scan) {
    if (obs.rssi_dbm < kMinValidRssiDbm || obs.rssi_dbm > kMaxValidRssiDbm) {
      return Valid::failure("scan: implausible RSSI " + std::to_string(obs.rssi_dbm) +
                            " dBm");
    }
  }
  return Valid(true);
}

Valid validate_reference_point(const ReferencePoint& p) {
  if (!position_ok(p.pos)) {
    return Valid::failure("reference point: non-finite or out-of-envelope position");
  }
  auto scan = validate_scan(p.scan);
  if (!scan) return Valid::failure("reference point: " + scan.error());
  return Valid(true);
}

Valid validate_upload(const ScannedUpload& upload) {
  if (upload.positions.empty()) {
    return Valid::failure("upload: empty trajectory");
  }
  if (upload.positions.size() != upload.scans.size()) {
    return Valid::failure("upload: positions/scans size mismatch");
  }
  if (upload.positions.size() > kMaxUploadPoints) {
    return Valid::failure("upload: too many points (" +
                          std::to_string(upload.positions.size()) + ")");
  }
  for (std::size_t i = 0; i < upload.positions.size(); ++i) {
    if (!position_ok(upload.positions[i])) {
      return Valid::failure("upload: bad position at point " + std::to_string(i));
    }
    auto scan = validate_scan(upload.scans[i]);
    if (!scan) {
      return Valid::failure("upload: point " + std::to_string(i) + ": " +
                            scan.error());
    }
  }
  return Valid(true);
}

Expected<bool, std::string> UploaderRateLimiter::admit(UploaderId uploader,
                                                       std::uint64_t tick) {
  if (!policy_.enabled() || uploader == kAnonymousUploader) return Valid(true);
  std::deque<std::uint64_t>& ticks = admitted_[uploader];
  // Expire admissions that slid out of the window ending at `tick`.
  while (!ticks.empty() && ticks.front() + policy_.window_appends <= tick) {
    ticks.pop_front();
  }
  if (ticks.size() >= policy_.max_per_uploader) {
    return Valid::failure("uploader " + std::to_string(uploader) +
                          ": rate cap exceeded (" +
                          std::to_string(policy_.max_per_uploader) + " per " +
                          std::to_string(policy_.window_appends) + " appends)");
  }
  ticks.push_back(tick);
  return Valid(true);
}

}  // namespace trajkit::wifi
