#include "wifi/reputation.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace trajkit::wifi {
namespace {

void append_num(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

double ReputationBook::agreement(double deviation_db, const ReputationParams& params) {
  const double dev = std::fabs(deviation_db);
  if (dev <= params.agree_tol_db) return 1.0;
  if (params.agree_falloff_db <= 0.0) return 0.0;
  const double over = dev - params.agree_tol_db;
  if (over >= params.agree_falloff_db) return 0.0;
  return 1.0 - over / params.agree_falloff_db;
}

void ReputationBook::observe(UploaderId uploader, double agreement,
                             const ReputationParams& params) {
  if (uploader == kAnonymousUploader) return;
  UploaderRecord& record = records_[uploader];
  record.score = (1.0 - params.decay) * record.score + params.decay * agreement;
  ++record.observations;
  if (!record.quarantined && record.observations >= params.min_observations &&
      record.score < params.quarantine_below) {
    record.quarantined = true;
  }
}

void ReputationBook::quarantine(UploaderId uploader) {
  if (uploader == kAnonymousUploader) return;
  records_[uploader].quarantined = true;
}

void ReputationBook::clear(UploaderId uploader) {
  records_.erase(uploader);
}

bool ReputationBook::is_quarantined(UploaderId uploader) const {
  const auto it = records_.find(uploader);
  return it != records_.end() && it->second.quarantined;
}

UploaderRecord ReputationBook::record(UploaderId uploader) const {
  const auto it = records_.find(uploader);
  return it == records_.end() ? UploaderRecord{} : it->second;
}

std::vector<UploaderId> ReputationBook::quarantined() const {
  std::vector<UploaderId> out;
  for (const auto& [uploader, record] : records_) {
    if (record.quarantined) out.push_back(uploader);
  }
  return out;
}

std::string ReputationBook::serialize() const {
  std::string out = "repbook 1 ";
  out += std::to_string(records_.size());
  out += '\n';
  for (const auto& [uploader, record] : records_) {
    out += std::to_string(uploader);
    out += ' ';
    append_num(out, record.score);
    out += ' ';
    out += std::to_string(record.observations);
    out += ' ';
    out += record.quarantined ? '1' : '0';
    out += '\n';
  }
  return out;
}

Expected<ReputationBook, std::string> ReputationBook::deserialize(
    const std::string& text) {
  using Result = Expected<ReputationBook, std::string>;
  std::istringstream is(text);
  std::string magic;
  int version = 0;
  std::size_t count = 0;
  if (!(is >> magic >> version >> count) || magic != "repbook" || version != 1) {
    return Result::failure("reputation book: bad header");
  }
  ReputationBook book;
  for (std::size_t i = 0; i < count; ++i) {
    UploaderId uploader = 0;
    UploaderRecord record;
    int quarantined = 0;
    if (!(is >> uploader >> record.score >> record.observations >> quarantined) ||
        (quarantined != 0 && quarantined != 1)) {
      return Result::failure("reputation book: truncated record");
    }
    if (!std::isfinite(record.score) || record.score < 0.0 || record.score > 1.0) {
      return Result::failure("reputation book: implausible score");
    }
    record.quarantined = quarantined == 1;
    if (uploader == kAnonymousUploader) {
      return Result::failure("reputation book: anonymous uploader tracked");
    }
    if (!book.records_.emplace(uploader, record).second) {
      return Result::failure("reputation book: duplicate uploader");
    }
  }
  return Result(std::move(book));
}

}  // namespace trajkit::wifi
