// Per-cell sufficient statistics of the crowdsourced reference world.
//
// The RPD layer derives its per-reference-point counting statistics from
// radius queries, which makes "what changed when this scan arrived?" an O(n)
// question.  This grid answers it in O(1): every ingested reference point
// folds into exactly one cell (quantised east/north at a fixed cell size),
// carrying the cell's membership count and, per AP heard there, the
// sufficient statistics of its RSSI sample — observation count, sum and sum
// of squares.  Those three numbers are enough to maintain mean/variance
// drift signals incrementally, to stamp snapshots and published artifacts
// with a cheap content fingerprint (checksum()), and to let CrowdStore
// compaction reuse the already-current statistics instead of recomputing
// them from every stored point.
//
// Determinism: cells and per-cell AP maps are ordered containers, and the
// double accumulators are updated in ingestion order — so a grid rebuilt by
// replaying the same points in the same order is bitwise-identical to one
// maintained incrementally, which is exactly the equality the compaction
// debug check asserts.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "common/expected.hpp"
#include "wifi/refindex.hpp"

namespace trajkit::wifi {

/// Sufficient statistics of one AP's RSSI sample inside one cell.
struct ApCellStats {
  std::uint64_t count = 0;
  double sum = 0.0;    ///< sum of RSSI dBm, in ingestion order
  double sumsq = 0.0;  ///< sum of squared RSSI dBm, in ingestion order

  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }

  friend bool operator==(const ApCellStats&, const ApCellStats&) = default;
};

class CellStatsGrid {
 public:
  /// Cell coordinates: floor(east / cell), floor(north / cell).
  using CellKey = std::pair<std::int64_t, std::int64_t>;

  struct Cell {
    std::uint64_t count = 0;  ///< reference points in the cell
    std::map<std::uint64_t, ApCellStats> aps;

    friend bool operator==(const Cell&, const Cell&) = default;
  };

  /// `cell_size_m` defaults to the reference index's grid pitch.
  explicit CellStatsGrid(double cell_size_m = 4.0);

  /// Fold one ingested reference point into its cell.
  void add(const ReferencePoint& point);

  CellKey cell_of(const Enu& pos) const;
  /// The cell holding `pos`, or nullptr when nothing landed there yet.
  const Cell* cell_at(const Enu& pos) const;

  std::uint64_t point_count() const { return points_; }
  std::size_t cell_count() const { return cells_.size(); }
  double cell_size_m() const { return cell_size_m_; }
  const std::map<CellKey, Cell>& cells() const { return cells_; }

  /// Deterministic text rendering (%.17g doubles, so accumulators round-trip
  /// exactly): the snapshot record format and the equality witness for the
  /// compaction debug check.
  std::string serialize() const;
  static Expected<CellStatsGrid, std::string> deserialize(const std::string& text);

  /// FNV-1a of serialize(): the content fingerprint snapshots and published
  /// artifacts carry.
  std::uint64_t checksum() const;

  friend bool operator==(const CellStatsGrid&, const CellStatsGrid&) = default;

 private:
  double cell_size_m_;
  std::uint64_t points_ = 0;
  std::map<CellKey, Cell> cells_;
};

}  // namespace trajkit::wifi
