// Durable store for the crowdsourced RSSI reference dataset (the paper's
// historical scan store H that the whole defense leans on).
//
// Streaming ingestion is write-ahead: every accepted scan is validated
// (wifi/validate), encoded as one text line and appended to a CRC-framed
// journal (common/durable/journal) *before* it is visible in memory.  An
// explicit compact() folds the journal into a CRC-framed snapshot (one
// durable container: a meta record plus one record per reference point) and
// resets the journal.
//
// Crash safety is the point of the split:
//   - a crash mid-append leaves a torn journal tail, which the next open()
//     truncates deterministically — the store recovers to an exact prefix of
//     the accepted scans;
//   - a crash anywhere inside compact() double-applies nothing, because the
//     snapshot records the next journal seq it has folded in and replay
//     skips older records.  Snapshot committed but journal not yet reset is
//     therefore a fully consistent state, not a hazard.
//
// Poisoning resistance (the adversarial-crowdsourcing layer): every append
// carries the uploader's stable identity in a v2 journal frame
// (durable/journal), and the store maintains, next to the pooled
// CellStatsGrid, a per-uploader ProvenanceGrid and a ReputationBook.  Each
// provenance-stamped append is scored against the robust consensus the
// other witnesses of its cells form (RobustCellAggregator: trimmed mean /
// median of per-uploader means); uploaders whose decayed agreement sinks
// below threshold are quarantined — their points stay durable and replay
// bitwise, but trusted_points() holds them out of epoch publishes until a
// "#clear" review clears them.  Review actions ride the WAL as '#' control
// frames, same discipline as "#epoch", so recovery and follower shipping
// replay them exactly.
//
// Determinism of the adversarial layer: reputation is a pure function of the
// ingestion sequence (points, uploaders, control frames) under fixed
// ReputationParams/RobustAggregationParams — configure the same params
// before replaying a journal that was scored under them, or the recovered
// scores will differ (the snapshot carries its fold-time scores verbatim, so
// only the journal tail is rescored on open).
//
// VerifierService::try_create_from_store cold-starts a serving process from
// any such crash point and reproduces bit-identical verdicts.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/durable/journal.hpp"
#include "common/expected.hpp"
#include "wifi/cell_stats.hpp"
#include "wifi/provenance.hpp"
#include "wifi/refindex.hpp"
#include "wifi/reputation.hpp"
#include "wifi/validate.hpp"

namespace trajkit::wifi {

/// Fault/crash point between compact()'s two stages (snapshot committed,
/// journal not yet reset), keyed by the snapshot path.  The durable and
/// journal layers carry their own points inside each stage.
inline constexpr const char* kFaultStoreCompact = "store.compact_between";

class CrowdStore {
 public:
  /// What open() reconstructed, for logs and the recovery tests.
  struct OpenStats {
    std::size_t snapshot_points = 0;   ///< points folded into the snapshot
    std::size_t replayed_records = 0;  ///< journal records applied on top
    std::uint64_t skipped_stale = 0;   ///< journal records older than the snapshot
    std::uint64_t truncated_bytes = 0; ///< torn-tail bytes the journal discarded
  };

  /// A parsed '#' control frame.  Control frames ride the WAL next to the
  /// points — "#epoch N" (model epoch published), "#quarantine U" (review
  /// forced an uploader out), "#clear U" (review reinstated it) — so
  /// recovery and follower frame shipping replay operator actions exactly.
  struct ControlFrame {
    enum class Kind { kEpoch, kMotionEpoch, kQuarantine, kClear };
    Kind kind = Kind::kEpoch;
    std::uint64_t value = 0;  ///< epoch number or uploader id
  };

  /// Adversarial-layer tuning, applied *before* journal replay so the
  /// recovered reputation scores are computed under the same parameters the
  /// original process scored with (see the determinism note above).
  struct Tuning {
    ReputationParams reputation;
    RobustAggregationParams aggregation;
    UploaderRatePolicy rate_policy;
  };

  /// Open (creating if needed) the store rooted at directory `dir`.  Layout:
  /// dir/crowd.snapshot (durable container) + dir/crowd.journal (WAL).
  /// `sync_each_append` follows Journal::open's contract.
  static Expected<std::unique_ptr<CrowdStore>, std::string> open(
      const std::string& dir, bool sync_each_append = true,
      const Tuning& tuning = {});

  CrowdStore(const CrowdStore&) = delete;
  CrowdStore& operator=(const CrowdStore&) = delete;

  /// Validate and durably append one crowdsourced reference point under
  /// `uploader`'s identity; it is journaled (and fsynced, in a v2 provenance
  /// frame) before points() shows it, then scored against the robust
  /// consensus of its cells.  kAnonymousUploader keeps the legacy v1 frame
  /// and skips reputation/rate accounting.  Returns the journal seq it was
  /// accepted under.
  Expected<std::uint64_t, std::string> append(const ReferencePoint& point,
                                              UploaderId uploader);
  Expected<std::uint64_t, std::string> append(const ReferencePoint& point) {
    return append(point, kAnonymousUploader);
  }

  /// Journal an epoch control frame ("#epoch N").  Epoch markers ride the
  /// same WAL as the points, so followers learn about published model epochs
  /// through the existing frame-shipping path, and recovery restores the
  /// highest epoch the store had observed.  Monotone: a marker never lowers
  /// observed_epoch().  Returns the journal seq of the marker frame.
  Expected<std::uint64_t, std::string> append_epoch_marker(std::uint64_t epoch);

  /// Journal a motion-model epoch marker ("#motion_epoch N"): the quantized
  /// motion classifier published under ArtifactStore epoch N.  Same contract
  /// as append_epoch_marker — rides the WAL, ships to followers verbatim,
  /// monotone, survives recovery and compaction — but tracks the motion
  /// sidecar's artifact lineage independently of the RSSI detector's.
  Expected<std::uint64_t, std::string> append_motion_epoch_marker(std::uint64_t epoch);

  /// Review actions, journaled as control frames then applied: force an
  /// uploader into quarantine / clear it back to a fresh record.
  Expected<std::uint64_t, std::string> append_quarantine_marker(UploaderId uploader);
  Expected<std::uint64_t, std::string> append_clear_marker(UploaderId uploader);

  /// Journal + apply an already-encoded '#' control frame verbatim (the
  /// replication path: a follower re-journals exactly the payload its leader
  /// shipped).  Rejects unknown control frames.
  Expected<std::uint64_t, std::string> append_control(const std::string& payload);

  /// Fold the journal into a fresh snapshot, then reset the journal.  Safe to
  /// crash at any point inside; idempotent to re-run after recovery.  The
  /// snapshot carries the full dataset — quarantined points included, they
  /// must survive a later "#clear" — plus the provenance grid and the
  /// reputation book, so recovery never rescored folded history.
  Expected<bool, std::string> compact();

  /// The full recovered + appended reference set, in ingestion order —
  /// quarantined uploaders included (storage is not judgement).
  const std::vector<ReferencePoint>& points() const { return points_; }

  /// Uploader of each point, parallel to points().
  const std::vector<UploaderId>& uploaders() const { return uploaders_; }
  UploaderId uploader_of(std::size_t i) const { return uploaders_[i]; }

  /// The serving view: every point whose uploader is not quarantined, in
  /// ingestion order.  This is what epoch publishes fold into artifacts —
  /// the quarantine stage that keeps suspected poison out of the model while
  /// review is pending.
  std::vector<ReferencePoint> trusted_points() const;
  /// Points currently held out by quarantine (points() size minus trusted).
  std::size_t quarantined_point_count() const;

  /// Per-cell sufficient statistics (count/sum/sumsq per AP) maintained
  /// incrementally on every append — always current with points(), so
  /// compact() serialises them instead of recomputing, and the online model
  /// layer reads densities without a scan over the dataset.
  const CellStatsGrid& cell_stats() const { return cell_stats_; }

  /// The same statistics broken down by uploader (the robust-aggregation and
  /// reputation substrate), and the reputation ledger itself.
  const ProvenanceGrid& provenance() const { return provenance_; }
  const ReputationBook& reputation() const { return reputation_; }

  /// Adversarial-layer configuration.  Set before traffic (and identically
  /// before recovery — see the determinism note above); not persisted.
  void set_reputation_params(const ReputationParams& params) { rep_params_ = params; }
  const ReputationParams& reputation_params() const { return rep_params_; }
  void set_aggregation_params(const RobustAggregationParams& params);
  const RobustAggregationParams& aggregation_params() const { return agg_params_; }
  /// Per-uploader rate cap (wifi/validate); applied at append admission,
  /// never at replay (journaled records were already admitted).
  void set_rate_policy(const UploaderRatePolicy& policy);

  /// Highest model epoch marker this store has journaled, observed or
  /// recovered (0 = none yet).
  std::uint64_t observed_epoch() const { return observed_epoch_; }

  /// Highest motion-model epoch marker journaled, observed or recovered
  /// (0 = none yet) — the epoch followers load the quantized motion
  /// classifier from after adopting shipped frames.
  std::uint64_t observed_motion_epoch() const { return observed_motion_epoch_; }

  /// Debug flag: when set, compact() recomputes the cell statistics and the
  /// provenance grid from scratch and fails (Expected) unless the
  /// incremental state is bitwise identical — the cheap-reuse path stays
  /// honest under test.
  void set_verify_cell_stats(bool on) { verify_cell_stats_ = on; }

  /// Seq the next append will be assigned.
  std::uint64_t next_seq() const { return journal_->next_seq(); }
  /// Records sitting in the journal (appended or replayed since the last
  /// compaction) — the compaction trigger.
  std::size_t journaled_since_snapshot() const { return journaled_; }
  const OpenStats& open_stats() const { return open_stats_; }

  static std::string snapshot_path(const std::string& dir);
  static std::string journal_path(const std::string& dir);
  /// Format tag of the store's write-ahead journal, for read-only frame
  /// shipping (durable::Journal::read_records) by the replication layer.
  static const char* journal_tag();

  /// Text codec for one reference point, shared by the journal payloads and
  /// the snapshot records ("east north traj_id n mac rssi ...", %.17g).
  /// Provenance never rides the payload: the journal frame (v2) and the
  /// snapshot record prefix carry it, so payload bytes match v1 exactly.
  static std::string encode_point(const ReferencePoint& point);
  static Expected<ReferencePoint, std::string> decode_point(const std::string& line);

  /// Control-frame codec.  Payloads starting with '#' are reserved for
  /// control frames; parse_control rejects unknown kinds.  is_epoch_marker
  /// parses the epoch into `epoch` when non-null (kept for the shipping
  /// layer's fast path).
  static std::string encode_epoch_marker(std::uint64_t epoch);
  static std::string encode_motion_epoch_marker(std::uint64_t epoch);
  static std::string encode_quarantine_marker(UploaderId uploader);
  static std::string encode_clear_marker(UploaderId uploader);
  static Expected<ControlFrame, std::string> parse_control(const std::string& payload);
  static bool is_epoch_marker(const std::string& payload,
                              std::uint64_t* epoch = nullptr);

 private:
  CrowdStore() = default;

  /// Score `point` against the robust consensus of its cells (self excluded),
  /// then fold it into every in-memory structure.  Shared bit-for-bit by the
  /// append path and journal replay.
  void ingest_state(const ReferencePoint& point, UploaderId uploader);
  void apply_control(const ControlFrame& frame);

  std::string dir_;
  std::unique_ptr<durable::Journal> journal_;
  std::vector<ReferencePoint> points_;
  std::vector<UploaderId> uploaders_;  ///< parallel to points_
  CellStatsGrid cell_stats_;
  ProvenanceGrid provenance_;
  ReputationBook reputation_;
  ReputationParams rep_params_;
  RobustAggregationParams agg_params_;
  UploaderRateLimiter rate_limiter_;
  std::uint64_t observed_epoch_ = 0;
  std::uint64_t observed_motion_epoch_ = 0;
  bool verify_cell_stats_ = false;
  std::size_t snapshot_count_ = 0;  ///< prefix of points_ covered by the snapshot
  std::size_t journaled_ = 0;
  OpenStats open_stats_;
};

}  // namespace trajkit::wifi
