// Durable store for the crowdsourced RSSI reference dataset (the paper's
// historical scan store H that the whole defense leans on).
//
// Streaming ingestion is write-ahead: every accepted scan is validated
// (wifi/validate), encoded as one text line and appended to a CRC-framed
// journal (common/durable/journal) *before* it is visible in memory.  An
// explicit compact() folds the journal into a CRC-framed snapshot (one
// durable container: a meta record plus one record per reference point) and
// resets the journal.
//
// Crash safety is the point of the split:
//   - a crash mid-append leaves a torn journal tail, which the next open()
//     truncates deterministically — the store recovers to an exact prefix of
//     the accepted scans;
//   - a crash anywhere inside compact() double-applies nothing, because the
//     snapshot records the next journal seq it has folded in and replay
//     skips older records.  Snapshot committed but journal not yet reset is
//     therefore a fully consistent state, not a hazard.
//
// VerifierService::try_create_from_store cold-starts a serving process from
// any such crash point and reproduces bit-identical verdicts.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/durable/journal.hpp"
#include "common/expected.hpp"
#include "wifi/cell_stats.hpp"
#include "wifi/refindex.hpp"

namespace trajkit::wifi {

/// Fault/crash point between compact()'s two stages (snapshot committed,
/// journal not yet reset), keyed by the snapshot path.  The durable and
/// journal layers carry their own points inside each stage.
inline constexpr const char* kFaultStoreCompact = "store.compact_between";

class CrowdStore {
 public:
  /// What open() reconstructed, for logs and the recovery tests.
  struct OpenStats {
    std::size_t snapshot_points = 0;   ///< points folded into the snapshot
    std::size_t replayed_records = 0;  ///< journal records applied on top
    std::uint64_t skipped_stale = 0;   ///< journal records older than the snapshot
    std::uint64_t truncated_bytes = 0; ///< torn-tail bytes the journal discarded
  };

  /// Open (creating if needed) the store rooted at directory `dir`.  Layout:
  /// dir/crowd.snapshot (durable container) + dir/crowd.journal (WAL).
  /// `sync_each_append` follows Journal::open's contract.
  static Expected<std::unique_ptr<CrowdStore>, std::string> open(
      const std::string& dir, bool sync_each_append = true);

  CrowdStore(const CrowdStore&) = delete;
  CrowdStore& operator=(const CrowdStore&) = delete;

  /// Validate and durably append one crowdsourced reference point; it is
  /// journaled (and fsynced) before points() shows it.  Returns the journal
  /// seq it was accepted under.
  Expected<std::uint64_t, std::string> append(const ReferencePoint& point);

  /// Journal an epoch control frame ("#epoch N").  Epoch markers ride the
  /// same WAL as the points, so followers learn about published model epochs
  /// through the existing frame-shipping path, and recovery restores the
  /// highest epoch the store had observed.  Monotone: a marker never lowers
  /// observed_epoch().  Returns the journal seq of the marker frame.
  Expected<std::uint64_t, std::string> append_epoch_marker(std::uint64_t epoch);

  /// Fold the journal into a fresh snapshot, then reset the journal.  Safe to
  /// crash at any point inside; idempotent to re-run after recovery.
  Expected<bool, std::string> compact();

  /// The full recovered + appended reference set, in ingestion order.
  const std::vector<ReferencePoint>& points() const { return points_; }

  /// Per-cell sufficient statistics (count/sum/sumsq per AP) maintained
  /// incrementally on every append — always current with points(), so
  /// compact() serialises them instead of recomputing, and the online model
  /// layer reads densities without a scan over the dataset.
  const CellStatsGrid& cell_stats() const { return cell_stats_; }

  /// Highest model epoch marker this store has journaled, observed or
  /// recovered (0 = none yet).
  std::uint64_t observed_epoch() const { return observed_epoch_; }

  /// Debug flag: when set, compact() recomputes the cell statistics from
  /// scratch and fails (Expected) unless the incremental grid is bitwise
  /// identical — the cheap-reuse path stays honest under test.
  void set_verify_cell_stats(bool on) { verify_cell_stats_ = on; }

  /// Seq the next append will be assigned.
  std::uint64_t next_seq() const { return journal_->next_seq(); }
  /// Records sitting in the journal (appended or replayed since the last
  /// compaction) — the compaction trigger.
  std::size_t journaled_since_snapshot() const { return journaled_; }
  const OpenStats& open_stats() const { return open_stats_; }

  static std::string snapshot_path(const std::string& dir);
  static std::string journal_path(const std::string& dir);
  /// Format tag of the store's write-ahead journal, for read-only frame
  /// shipping (durable::Journal::read_records) by the replication layer.
  static const char* journal_tag();

  /// Text codec for one reference point, shared by the journal payloads and
  /// the snapshot records ("east north traj_id n mac rssi ...", %.17g).
  static std::string encode_point(const ReferencePoint& point);
  static Expected<ReferencePoint, std::string> decode_point(const std::string& line);

  /// Control-frame codec.  Payloads starting with '#' are reserved for
  /// control frames; "#epoch N" is the only kind today.  is_epoch_marker
  /// parses the epoch into `epoch` when non-null.
  static std::string encode_epoch_marker(std::uint64_t epoch);
  static bool is_epoch_marker(const std::string& payload,
                              std::uint64_t* epoch = nullptr);

 private:
  CrowdStore() = default;

  std::string dir_;
  std::unique_ptr<durable::Journal> journal_;
  std::vector<ReferencePoint> points_;
  CellStatsGrid cell_stats_;
  std::uint64_t observed_epoch_ = 0;
  bool verify_cell_stats_ = false;
  std::size_t snapshot_count_ = 0;  ///< prefix of points_ covered by the snapshot
  std::size_t journaled_ = 0;
  OpenStats open_stats_;
};

}  // namespace trajkit::wifi
