// Unix-domain-socket transport: genuinely cross-process shards.
//
// UdsServer listens on a filesystem socket path and serves length-prefixed
// frames (net/frame) through a Handler — one accept-loop thread plus one
// thread per live connection, all joined by stop(), so sanitizer legs see
// clean shutdowns.  UdsTransport is the client: it caches one connection per
// endpoint (socket path), allows one in-flight call per connection, and
// enforces the per-call deadline with poll().  A timed-out call closes its
// connection, which is what keeps request/response matching trivial: a late
// response can never be mistaken for the answer to a newer call, because the
// stream it would arrive on is gone.  Frames also carry a msg id that the
// response must echo, belt and braces against protocol bugs.
//
// The endpoint string IS the socket path, so the shard protocol layer
// (serve/net_shard) is byte-identical over UDS and SimNet — tests run the
// same equivalence suite over both, with the UDS side forked into a real
// second process.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/expected.hpp"
#include "net/transport.hpp"

namespace trajkit::net {

class UdsServer {
 public:
  /// Prepares a server for `socket_path`; start() does the binding.
  UdsServer(std::string socket_path, Handler handler);
  ~UdsServer();
  UdsServer(const UdsServer&) = delete;
  UdsServer& operator=(const UdsServer&) = delete;

  /// Unlink any stale socket, bind, listen, and spawn the accept loop.
  Expected<bool, std::string> start();
  /// Stop accepting, close every connection, join all threads (idempotent).
  void stop();

  const std::string& path() const { return path_; }
  bool running() const { return running_.load(); }
  /// Requests served (handler invocations) since start.
  std::uint64_t served() const { return served_.load(); }

 private:
  void accept_loop();
  void serve_connection(int fd);

  std::string path_;
  Handler handler_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> served_{0};
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
};

class UdsTransport final : public Transport {
 public:
  UdsTransport() = default;
  ~UdsTransport() override;
  UdsTransport(const UdsTransport&) = delete;
  UdsTransport& operator=(const UdsTransport&) = delete;

  /// `endpoint` is the server's socket path.
  CallResult call(const std::string& endpoint, std::string_view request,
                  const CallOptions& opts) override;

  /// Drop every cached connection (next call reconnects).
  void reset();

 private:
  struct Connection {
    std::mutex mu;  ///< one in-flight call per connection
    int fd = -1;
  };

  std::mutex map_mu_;
  std::map<std::string, std::unique_ptr<Connection>> connections_;
  std::atomic<std::uint64_t> next_msg_id_{1};
};

}  // namespace trajkit::net
