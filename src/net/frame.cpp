#include "net/frame.hpp"

#include <cstring>

#include "common/durable/crc32.hpp"

namespace trajkit::net {
namespace {

constexpr char kMagic[4] = {'T', 'K', 'N', 'F'};

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

}  // namespace

std::string encode_frame(std::uint64_t msg_id, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u64(out, msg_id);
  put_u32(out, durable::crc32(payload));
  out.append(payload);
  return out;
}

Expected<FrameHeader, std::string> decode_frame_header(std::string_view bytes) {
  using Result = Expected<FrameHeader, std::string>;
  if (bytes.size() < kFrameHeaderBytes)
    return Result::failure("net frame: short header");
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    return Result::failure("net frame: bad magic");
  FrameHeader h;
  h.payload_len = get_u32(bytes.data() + 4);
  h.msg_id = get_u64(bytes.data() + 8);
  h.payload_crc = get_u32(bytes.data() + 16);
  if (h.payload_len > kMaxFramePayload)
    return Result::failure("net frame: implausible payload length " +
                           std::to_string(h.payload_len));
  return h;
}

Expected<bool, std::string> check_frame_payload(const FrameHeader& header,
                                                std::string_view payload) {
  using Result = Expected<bool, std::string>;
  if (payload.size() != header.payload_len)
    return Result::failure("net frame: payload length mismatch");
  if (durable::crc32(payload) != header.payload_crc)
    return Result::failure("net frame: payload CRC mismatch");
  return true;
}

Expected<std::string, std::string> decode_frame(std::string_view bytes,
                                                std::uint64_t* msg_id) {
  using Result = Expected<std::string, std::string>;
  auto header = decode_frame_header(bytes);
  if (!header) return Result::failure(header.error());
  const std::string_view payload = bytes.substr(kFrameHeaderBytes);
  if (payload.size() != header.value().payload_len)
    return Result::failure(payload.size() < header.value().payload_len
                               ? "net frame: truncated payload"
                               : "net frame: trailing bytes after payload");
  auto ok = check_frame_payload(header.value(), payload);
  if (!ok) return Result::failure(ok.error());
  if (msg_id != nullptr) *msg_id = header.value().msg_id;
  return std::string(payload);
}

}  // namespace trajkit::net
