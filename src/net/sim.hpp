// Deterministic simulated network: chaos schedules that replay bit-identically.
//
// SimNet is an in-process Transport whose fault decisions — drop, delay,
// reorder, duplicate, and the fail_first deterministic prefix — are pure
// functions of (seed, endpoint, leg, key, attempt) through the same
// counter-based Rng::substream machinery as the PR 3 FaultInjector.  Two
// calls with the same logical identity draw the same fate no matter which
// thread issues them or in what order, so a chaos schedule that breaks a
// shard protocol under `--threads 4` reproduces under `--threads 1` from the
// seed alone (tests/net_test.cpp, NetDeterminism).
//
// Time is virtual and per-call: a delay draw does not sleep, it accrues
// against the call's deadline_us, and a delivery pushed past the deadline is
// reported kTimeout to the caller *after the handler ran* — exactly the
// "late ack lost" shape real networks produce, and the one that flushes out
// protocols which are not idempotent under retry.
//
// Fault anatomy per call (each leg decided by its own substream):
//   request leg   drop      request vanishes -> kTimeout, handler never runs
//                 reorder   request parked; delivered immediately BEFORE the
//                           next request to that endpoint (out-of-order,
//                           counted late) -> kTimeout for the parked call
//                 duplicate handler runs twice with the same payload (retry
//                           storm / network dup); first response is used
//                 delay     virtual elapsed += draw; past-deadline delivery
//                           still runs the handler, response discarded
//   response leg  drop      handler ran, ack lost -> kTimeout
//                 delay     handler ran; past-deadline response discarded
//   partitions    one-way (inbound: requests die; outbound: responses die)
//                 or full, per endpoint, via partition()/heal() — these model
//                 operator-visible network splits, so they are explicit
//                 state, not probability draws.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "net/transport.hpp"

namespace trajkit::net {

/// Probabilistic fault schedule for one leg (request or response) of one
/// endpoint.  All probabilities are independent per-call draws from the
/// call's substream; fail_first unconditionally drops attempts
/// [0, fail_first) of every key, the deterministic warm-up the PR 3
/// FaultSpec uses to exercise bounded retry exactly N times.
struct SimFaultSpec {
  double drop = 0.0;
  double duplicate = 0.0;  ///< request leg only; ignored on responses
  double reorder = 0.0;    ///< request leg only; ignored on responses
  double delay = 0.0;      ///< probability of drawing a delay at all
  std::int64_t delay_min_us = 0;
  std::int64_t delay_max_us = 0;
  std::uint64_t fail_first = 0;

  bool any() const {
    return drop > 0 || duplicate > 0 || reorder > 0 || delay > 0 ||
           fail_first > 0;
  }
};

/// Aggregate event counters (totals are schedule-determined; see stats()).
struct SimNetStats {
  std::uint64_t calls = 0;
  std::uint64_t delivered = 0;      ///< handler invocations (incl. dup/late)
  std::uint64_t dropped = 0;        ///< request- or response-leg drops
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;      ///< requests parked for out-of-order delivery
  std::uint64_t late = 0;           ///< deliveries past the caller's deadline
  std::uint64_t partition_drops = 0;
  std::uint64_t unreachable = 0;
};

class SimNet final : public Transport {
 public:
  enum class Partition {
    kNone,
    kInbound,   ///< requests to the endpoint die; its responses would flow
    kOutbound,  ///< requests arrive, responses die (the "acks lost" split)
    kFull,
  };

  explicit SimNet(std::uint64_t seed) : seed_(seed) {}

  /// Register / replace the handler for an endpoint.
  void bind(const std::string& endpoint, Handler handler);
  /// Simulate a dead process: calls return kUnreachable (not kTimeout, so
  /// callers can distinguish refused from lost).
  void unbind(const std::string& endpoint);

  /// Install a fault schedule on an endpoint's request and response legs.
  void set_faults(const std::string& endpoint, const SimFaultSpec& request_leg,
                  const SimFaultSpec& response_leg = {});
  void clear_faults();

  void partition(const std::string& endpoint, Partition mode);
  void heal(const std::string& endpoint);
  void heal_all();

  SimNetStats stats() const;
  std::uint64_t seed() const { return seed_; }

  CallResult call(const std::string& endpoint, std::string_view request,
                  const CallOptions& opts) override;

 private:
  struct Endpoint {
    Handler handler;
    SimFaultSpec request_faults;
    SimFaultSpec response_faults;
    Partition partition = Partition::kNone;
    /// Parked (reordered) request, delivered before the next one in.
    bool has_parked = false;
    std::string parked_request;
  };

  std::uint64_t seed_;
  mutable std::mutex mu_;
  std::map<std::string, Endpoint> endpoints_;

  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> duplicated_{0};
  std::atomic<std::uint64_t> reordered_{0};
  std::atomic<std::uint64_t> late_{0};
  std::atomic<std::uint64_t> partition_drops_{0};
  std::atomic<std::uint64_t> unreachable_{0};
};

}  // namespace trajkit::net
