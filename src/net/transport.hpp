// Message transport abstraction for cross-process shards.
//
// PR 6 replicated WAL frames and fanned segments out over in-process calls;
// this interface is the seam that lets the same shard protocol run over a
// real Unix-domain-socket transport (net/uds) between processes, or over the
// deterministic simulated network (net/sim) whose drop/delay/reorder/
// duplicate/partition schedules replay bit-identically across `--threads N`.
//
// The contract is deliberately minimal — one synchronous request/response
// exchange per call — because everything the shard plane needs on top
// (retries with deterministic jitter, hedged reads, heartbeats, gap repair)
// composes from that primitive in serve/net_shard without the transport
// knowing about WAL seqs or segments.
//
// Timeout semantics: kTimeout means "no response within the deadline", which
// says NOTHING about whether the request was delivered — the handler may
// have run and the response been lost.  Callers must only retry idempotent
// requests; the shard protocol makes every RPC idempotent (seq-disciplined
// applies, read-only tails/segments), which tests/net_test.cpp proves by
// injecting duplicates and response-leg drops at every shipping point.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace trajkit::net {

enum class CallStatus {
  kOk,           ///< response payload delivered
  kTimeout,      ///< no response within the deadline (request MAY have run)
  kUnreachable,  ///< endpoint unknown / connection refused
  kError,        ///< transport-level failure (framing, I/O)
};

const char* call_status_name(CallStatus status);

/// Per-call options.  `key`/`attempt` are the call's *logical* identity —
/// e.g. a WAL seq and the caller's retry ordinal, never an arrival ordinal —
/// which is what makes SimNet's fault decisions pure functions of the
/// workload instead of the thread schedule.
struct CallOptions {
  std::int64_t deadline_us = 50'000;
  std::uint64_t key = 0;
  std::uint64_t attempt = 0;
};

struct CallResult {
  CallStatus status = CallStatus::kError;
  /// Response payload (kOk) or a transport error description.
  std::string payload;

  bool ok() const { return status == CallStatus::kOk; }
  /// The request may have been lost in either direction — an idempotent
  /// protocol may safely resend.  kError (malformed frame, protocol bug) is
  /// not retryable: resending the same bytes reproduces it.
  bool retryable() const {
    return status == CallStatus::kTimeout || status == CallStatus::kUnreachable;
  }
};

/// Server side of an endpoint: request payload in, response payload out.
/// Application-level failures travel inside the response payload (the RPC
/// codec's "err ..." responses); a throwing handler is a transport error.
using Handler = std::function<std::string(const std::string& request)>;

class Transport {
 public:
  virtual ~Transport() = default;

  /// One request/response exchange with `endpoint` (a SimNet endpoint name
  /// or a UDS socket path).  Never throws; failures come back as status.
  virtual CallResult call(const std::string& endpoint, std::string_view request,
                          const CallOptions& opts) = 0;
};

}  // namespace trajkit::net
