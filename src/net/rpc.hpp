// Shard protocol codec: the messages ShardService replication and segment
// fan-out exchange over a Transport.
//
// Wire form is line-oriented text — the repo's durable formats are text with
// %.17g doubles (exact IEEE-754 round-trip), and the RPC layer keeps that
// idiom so a captured frame is eyeballable in a test failure.  Free-form
// byte fields (WAL payloads, error messages) are length-prefixed, never
// delimiter-escaped.  The verbs:
//
//   apply <term> <seq> <uploader> <len>\n<payload>
//     -> ok <next> | stale <next> | gap <expected> | fenced <term>
//        | err <len>\n<msg>
//   hb <term> <leader_next>
//     -> ok <follower_next> | fenced <term> | err ...
//   tail <from> <max>
//     -> frames <n> (\n<seq> <uploader> <len>\n<payload>)*  | err ...
//   seg <traj_id> <points> <top_k>(\n<east> <north> <aps> (<mac> <rssi>)*)*
//     -> segok <nf> <ns>\n<f..>\n<s..>                       | err ...
//
// Every RPC is idempotent by construction: applies are seq-disciplined
// (redelivery is "stale", a no-op), heartbeats/tails/segments are reads.
// That is what licenses the client's retry/hedge policy over a transport
// whose kTimeout cannot say whether the handler ran.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/expected.hpp"
#include "wifi/features.hpp"
#include "wifi/provenance.hpp"

namespace trajkit::net {

enum class Verb { kApply, kHeartbeat, kTail, kSegment, kUnknown };

/// Cheap dispatch on the first token of a request.
Verb peek_verb(std::string_view request);

/// Application-level failure response, shared by every verb.
std::string encode_rpc_error(std::string_view message);

// -- WAL frame shipping -------------------------------------------------------

struct ApplyRequest {
  std::uint64_t term = 0;
  std::uint64_t seq = 0;
  wifi::UploaderId uploader = wifi::kAnonymousUploader;
  std::string payload;  ///< CrowdStore point / '#' control encoding
};

struct FrameResponse {
  enum class Status { kApplied, kStale, kGap, kFenced, kError };
  Status status = Status::kError;
  /// next expected seq (kApplied/kStale), expected seq (kGap), or the
  /// follower's fencing term (kFenced).
  std::uint64_t value = 0;
  std::string error;  ///< kError only
};

std::string encode_apply(const ApplyRequest& request);
Expected<ApplyRequest, std::string> decode_apply(std::string_view request);
std::string encode_frame_response(const FrameResponse& response);
Expected<FrameResponse, std::string> decode_frame_response(std::string_view bytes);

// -- Leader lease heartbeat ---------------------------------------------------

struct HeartbeatRequest {
  std::uint64_t term = 0;
  std::uint64_t leader_next_seq = 0;  ///< lets a follower spot its own gap
};

std::string encode_heartbeat(const HeartbeatRequest& request);
Expected<HeartbeatRequest, std::string> decode_heartbeat(std::string_view request);

// -- Journal-tail backfill (gap repair) --------------------------------------

struct TailRequest {
  std::uint64_t from_seq = 0;
  std::uint64_t max_frames = 0;  ///< 0 = no cap
};

struct TailFrame {
  std::uint64_t seq = 0;
  wifi::UploaderId uploader = wifi::kAnonymousUploader;
  std::string payload;
};

std::string encode_tail(const TailRequest& request);
Expected<TailRequest, std::string> decode_tail(std::string_view request);
std::string encode_tail_response(const std::vector<TailFrame>& frames);
Expected<std::vector<TailFrame>, std::string> decode_tail_response(
    std::string_view bytes);

// -- Segment evaluation -------------------------------------------------------

/// The upload carries ONLY the segment's points — the shard evaluates
/// [0, n) locally and the router writes the answers into the merged
/// vector's slots for the original [begin, end).
struct SegmentRequest {
  wifi::ScannedUpload upload;
  std::size_t top_k = 0;
};

struct SegmentResponse {
  std::vector<double> features;  ///< 2 * top_k * n, %.17g round-tripped
  std::vector<double> scores;    ///< n
};

std::string encode_segment(const SegmentRequest& request);
Expected<SegmentRequest, std::string> decode_segment(std::string_view request);
std::string encode_segment_response(const SegmentResponse& response);
Expected<SegmentResponse, std::string> decode_segment_response(
    std::string_view bytes);

}  // namespace trajkit::net
