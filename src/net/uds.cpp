#include "net/uds.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/clock.hpp"
#include "net/frame.hpp"

namespace trajkit::net {
namespace {

constexpr int kPollSliceMs = 50;  ///< stop-flag poll granularity, server side

bool fill_sockaddr(const std::string& path, sockaddr_un* addr) {
  if (path.size() + 1 > sizeof(addr->sun_path)) return false;
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

/// Read exactly n bytes; polls in slices so `stopping` can interrupt.
/// Returns false on EOF, error, or stop.
bool read_full(int fd, char* buf, std::size_t n,
               const std::atomic<bool>& stopping) {
  std::size_t got = 0;
  while (got < n) {
    if (stopping.load(std::memory_order_relaxed)) return false;
    pollfd p{fd, POLLIN, 0};
    const int rc = ::poll(&p, 1, kPollSliceMs);
    if (rc < 0 && errno != EINTR) return false;
    if (rc <= 0) continue;
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r <= 0) {
      if (r < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      return false;
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_full(int fd, const char* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (w <= 0) {
      if (w < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      return false;
    }
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

/// Client-side deadline read: polls against an absolute deadline.
/// Returns +1 on success, 0 on deadline, -1 on connection error.
int read_full_deadline(int fd, char* buf, std::size_t n,
                       std::int64_t deadline_abs_us) {
  std::size_t got = 0;
  while (got < n) {
    const std::int64_t remaining_us = deadline_abs_us - steady_clock().now_us();
    if (remaining_us <= 0) return 0;
    pollfd p{fd, POLLIN, 0};
    const int timeout_ms =
        static_cast<int>((remaining_us + 999) / 1000);
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc < 0 && errno != EINTR) return -1;
    if (rc <= 0) continue;
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r <= 0) {
      if (r < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      return -1;
    }
    got += static_cast<std::size_t>(r);
  }
  return 1;
}

}  // namespace

UdsServer::UdsServer(std::string socket_path, Handler handler)
    : path_(std::move(socket_path)), handler_(std::move(handler)) {}

UdsServer::~UdsServer() { stop(); }

Expected<bool, std::string> UdsServer::start() {
  using Result = Expected<bool, std::string>;
  if (running_.load()) return true;
  sockaddr_un addr;
  if (!fill_sockaddr(path_, &addr))
    return Result::failure("uds: socket path too long: " + path_);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Result::failure("uds: socket(): " + std::string(std::strerror(errno)));
  ::unlink(path_.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Result::failure("uds: bind(" + path_ + "): " + err);
  }
  if (::listen(fd, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Result::failure("uds: listen(): " + err);
  }
  listen_fd_ = fd;
  stopping_.store(false);
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void UdsServer::stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (auto& t : threads)
    if (t.joinable()) t.join();
  ::unlink(path_.c_str());
}

void UdsServer::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd p{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&p, 1, kPollSliceMs);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) continue;
    const int conn = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (conn < 0) continue;
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_threads_.emplace_back([this, conn] { serve_connection(conn); });
  }
}

void UdsServer::serve_connection(int fd) {
  char header_buf[kFrameHeaderBytes];
  while (!stopping_.load(std::memory_order_relaxed)) {
    if (!read_full(fd, header_buf, kFrameHeaderBytes, stopping_)) break;
    auto header = decode_frame_header(
        std::string_view(header_buf, kFrameHeaderBytes));
    if (!header) break;  // stream framing cannot resync; poison the connection
    std::string payload(header.value().payload_len, '\0');
    if (!read_full(fd, payload.data(), payload.size(), stopping_)) break;
    if (!check_frame_payload(header.value(), payload)) break;
    served_.fetch_add(1, std::memory_order_relaxed);
    std::string response;
    try {
      response = handler_(payload);
    } catch (const std::exception& e) {
      break;  // a throwing handler is a transport error: drop the connection
    }
    const std::string out = encode_frame(header.value().msg_id, response);
    if (!write_full(fd, out.data(), out.size())) break;
  }
  ::close(fd);
}

UdsTransport::~UdsTransport() { reset(); }

void UdsTransport::reset() {
  std::lock_guard<std::mutex> lock(map_mu_);
  for (auto& [path, conn] : connections_) {
    std::lock_guard<std::mutex> conn_lock(conn->mu);
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
}

CallResult UdsTransport::call(const std::string& endpoint,
                              std::string_view request,
                              const CallOptions& opts) {
  Connection* conn = nullptr;
  {
    std::lock_guard<std::mutex> lock(map_mu_);
    auto& slot = connections_[endpoint];
    if (!slot) slot = std::make_unique<Connection>();
    conn = slot.get();
  }
  std::lock_guard<std::mutex> conn_lock(conn->mu);

  const std::int64_t deadline_abs_us =
      steady_clock().now_us() + opts.deadline_us;

  if (conn->fd < 0) {
    sockaddr_un addr;
    if (!fill_sockaddr(endpoint, &addr))
      return {CallStatus::kError, "uds: socket path too long: " + endpoint};
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
      return {CallStatus::kError,
              "uds: socket(): " + std::string(std::strerror(errno))};
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return {CallStatus::kUnreachable, "uds: connect(" + endpoint + "): " + err};
    }
    conn->fd = fd;
  }

  const std::uint64_t msg_id =
      next_msg_id_.fetch_add(1, std::memory_order_relaxed);
  const std::string out = encode_frame(msg_id, request);
  if (!write_full(conn->fd, out.data(), out.size())) {
    ::close(conn->fd);
    conn->fd = -1;
    return {CallStatus::kUnreachable, "uds: send failed (peer gone?)"};
  }

  char header_buf[kFrameHeaderBytes];
  int rc = read_full_deadline(conn->fd, header_buf, kFrameHeaderBytes,
                              deadline_abs_us);
  if (rc <= 0) {
    // A late response would desynchronise the stream — kill the connection
    // so the next call starts clean.
    ::close(conn->fd);
    conn->fd = -1;
    return rc == 0 ? CallResult{CallStatus::kTimeout, "uds: deadline"}
                   : CallResult{CallStatus::kUnreachable, "uds: read failed"};
  }
  auto header =
      decode_frame_header(std::string_view(header_buf, kFrameHeaderBytes));
  if (!header) {
    ::close(conn->fd);
    conn->fd = -1;
    return {CallStatus::kError, header.error()};
  }
  std::string payload(header.value().payload_len, '\0');
  rc = read_full_deadline(conn->fd, payload.data(), payload.size(),
                          deadline_abs_us);
  if (rc <= 0) {
    ::close(conn->fd);
    conn->fd = -1;
    return rc == 0 ? CallResult{CallStatus::kTimeout, "uds: deadline"}
                   : CallResult{CallStatus::kUnreachable, "uds: read failed"};
  }
  auto ok = check_frame_payload(header.value(), payload);
  if (!ok) {
    ::close(conn->fd);
    conn->fd = -1;
    return {CallStatus::kError, ok.error()};
  }
  if (header.value().msg_id != msg_id) {
    ::close(conn->fd);
    conn->fd = -1;
    return {CallStatus::kError, "uds: response msg id mismatch"};
  }
  return {CallStatus::kOk, std::move(payload)};
}

}  // namespace trajkit::net
