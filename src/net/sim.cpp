#include "net/sim.hpp"

#include "common/rng.hpp"

namespace trajkit::net {
namespace {

// FNV-1a over the endpoint name, folding the leg salt in: each (endpoint,
// leg) pair owns an independent decision stream.
std::uint64_t endpoint_hash(const std::string& endpoint, std::uint64_t salt) {
  std::uint64_t h = 1469598103934665603ull ^ salt;
  for (const char c : endpoint) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

constexpr std::uint64_t kRequestLeg = 0x72657175657374ull;   // "request"
constexpr std::uint64_t kResponseLeg = 0x726573706f6e73ull;  // "respons"
// Same key/attempt mix as common/fault.cpp, so a shipping fault schedule and
// a network fault schedule keyed by the same WAL seq stay independent but
// equally replayable.
constexpr std::uint64_t kKeyMix = 0x100000001b3ull;

struct LegFate {
  bool drop = false;
  bool duplicate = false;
  bool reorder = false;
  std::int64_t delay_us = 0;
};

// The leg's fate is a pure function of (seed, endpoint, leg, key, attempt):
// one substream, draws in a fixed order regardless of which are enabled, so
// adding a fault kind to a schedule never re-deals the others' outcomes.
LegFate decide(std::uint64_t seed, const std::string& endpoint,
               std::uint64_t leg, const SimFaultSpec& spec,
               const CallOptions& opts) {
  LegFate fate;
  if (!spec.any()) return fate;
  if (opts.attempt < spec.fail_first) {
    fate.drop = true;
    return fate;
  }
  Rng r = Rng::substream(seed ^ endpoint_hash(endpoint, leg),
                         opts.key * kKeyMix + opts.attempt);
  const double u_drop = r.uniform();
  const double u_dup = r.uniform();
  const double u_reorder = r.uniform();
  const double u_delay = r.uniform();
  const std::int64_t amount =
      spec.delay_max_us > spec.delay_min_us
          ? r.uniform_int(spec.delay_min_us, spec.delay_max_us)
          : spec.delay_min_us;
  fate.drop = u_drop < spec.drop;
  fate.duplicate = u_dup < spec.duplicate;
  fate.reorder = u_reorder < spec.reorder;
  if (u_delay < spec.delay) fate.delay_us = amount;
  return fate;
}

}  // namespace

const char* call_status_name(CallStatus status) {
  switch (status) {
    case CallStatus::kOk: return "ok";
    case CallStatus::kTimeout: return "timeout";
    case CallStatus::kUnreachable: return "unreachable";
    case CallStatus::kError: return "error";
  }
  return "?";
}

void SimNet::bind(const std::string& endpoint, Handler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  endpoints_[endpoint].handler = std::move(handler);
}

void SimNet::unbind(const std::string& endpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = endpoints_.find(endpoint);
  if (it != endpoints_.end()) it->second.handler = nullptr;
}

void SimNet::set_faults(const std::string& endpoint,
                        const SimFaultSpec& request_leg,
                        const SimFaultSpec& response_leg) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& ep = endpoints_[endpoint];
  ep.request_faults = request_leg;
  ep.response_faults = response_leg;
}

void SimNet::clear_faults() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, ep] : endpoints_) {
    ep.request_faults = {};
    ep.response_faults = {};
  }
}

void SimNet::partition(const std::string& endpoint, Partition mode) {
  std::lock_guard<std::mutex> lock(mu_);
  endpoints_[endpoint].partition = mode;
}

void SimNet::heal(const std::string& endpoint) {
  partition(endpoint, Partition::kNone);
}

void SimNet::heal_all() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, ep] : endpoints_) ep.partition = Partition::kNone;
}

SimNetStats SimNet::stats() const {
  SimNetStats s;
  s.calls = calls_.load();
  s.delivered = delivered_.load();
  s.dropped = dropped_.load();
  s.duplicated = duplicated_.load();
  s.reordered = reordered_.load();
  s.late = late_.load();
  s.partition_drops = partition_drops_.load();
  s.unreachable = unreachable_.load();
  return s;
}

CallResult SimNet::call(const std::string& endpoint, std::string_view request,
                        const CallOptions& opts) {
  calls_.fetch_add(1, std::memory_order_relaxed);

  Handler handler;
  LegFate req_fate;
  LegFate resp_fate;
  Partition part = Partition::kNone;
  bool deliver_parked = false;
  bool parked_current = false;
  std::string parked;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = endpoints_.find(endpoint);
    if (it == endpoints_.end() || !it->second.handler) {
      unreachable_.fetch_add(1, std::memory_order_relaxed);
      return {CallStatus::kUnreachable, "sim: no such endpoint " + endpoint};
    }
    Endpoint& ep = it->second;
    part = ep.partition;
    if (part == Partition::kInbound || part == Partition::kFull) {
      partition_drops_.fetch_add(1, std::memory_order_relaxed);
      return {CallStatus::kTimeout, "sim: inbound partition"};
    }
    handler = ep.handler;
    req_fate = decide(seed_, endpoint, kRequestLeg, ep.request_faults, opts);
    resp_fate = decide(seed_, endpoint, kResponseLeg, ep.response_faults, opts);
    // An older parked request rides out AFTER the current one — that is the
    // reorder: its successor reaches the handler first.
    if (ep.has_parked && !req_fate.drop) {
      deliver_parked = true;
      parked = std::move(ep.parked_request);
      ep.has_parked = false;
    }
    if (req_fate.reorder && !req_fate.drop && !ep.has_parked) {
      ep.has_parked = true;
      ep.parked_request.assign(request.data(), request.size());
      reordered_.fetch_add(1, std::memory_order_relaxed);
      parked_current = true;
    }
  }

  if (parked_current) {
    // The parked caller times out; a retry (new attempt) redraws its fate.
    if (deliver_parked) {
      delivered_.fetch_add(1, std::memory_order_relaxed);
      late_.fetch_add(1, std::memory_order_relaxed);
      handler(parked);
    }
    return {CallStatus::kTimeout, "sim: request reordered"};
  }
  if (req_fate.drop) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return {CallStatus::kTimeout, "sim: request dropped"};
  }

  // Virtual elapsed time: delay draws accrue against this call's deadline.
  std::int64_t elapsed_us = req_fate.delay_us;

  // Handlers run outside mu_ — a follower's apply handler may legitimately
  // RPC back through this SimNet (tail pull repair).
  delivered_.fetch_add(1, std::memory_order_relaxed);
  std::string response = handler(std::string(request));
  if (req_fate.duplicate) {
    duplicated_.fetch_add(1, std::memory_order_relaxed);
    delivered_.fetch_add(1, std::memory_order_relaxed);
    handler(std::string(request));  // duplicate delivery; response unused
  }
  if (deliver_parked) {
    delivered_.fetch_add(1, std::memory_order_relaxed);
    late_.fetch_add(1, std::memory_order_relaxed);
    handler(parked);
  }

  if (part == Partition::kOutbound) {
    // Request crossed, the response cannot: applied-but-unacked.
    partition_drops_.fetch_add(1, std::memory_order_relaxed);
    return {CallStatus::kTimeout, "sim: outbound partition"};
  }
  if (resp_fate.drop) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return {CallStatus::kTimeout, "sim: response dropped"};
  }
  elapsed_us += resp_fate.delay_us;
  if (elapsed_us > opts.deadline_us) {
    late_.fetch_add(1, std::memory_order_relaxed);
    return {CallStatus::kTimeout, "sim: response past deadline"};
  }
  return {CallStatus::kOk, std::move(response)};
}

}  // namespace trajkit::net
