#include "net/rpc.hpp"

#include <charconv>
#include <cstdio>

namespace trajkit::net {
namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, p);
}

void append_double(std::string& out, double v) {
  // %.17g: exact IEEE-754 double round-trip, the repo's durable-text idiom.
  char buf[40];
  const int n = std::snprintf(buf, sizeof(buf), "%.17g", v);
  out.append(buf, static_cast<std::size_t>(n));
}

/// Tiny cursor over the wire text; every take_* fails soft (sets bad).
struct Cursor {
  std::string_view rest;
  bool bad = false;

  bool take(char c) {
    if (bad || rest.empty() || rest.front() != c) return (bad = true, false);
    rest.remove_prefix(1);
    return true;
  }

  std::uint64_t take_u64() {
    if (bad) return 0;
    std::uint64_t v = 0;
    const auto [p, ec] =
        std::from_chars(rest.data(), rest.data() + rest.size(), v);
    if (ec != std::errc() || p == rest.data()) return (bad = true, 0);
    rest.remove_prefix(static_cast<std::size_t>(p - rest.data()));
    return v;
  }

  double take_double() {
    if (bad) return 0.0;
    double v = 0.0;
    const auto [p, ec] =
        std::from_chars(rest.data(), rest.data() + rest.size(), v);
    if (ec != std::errc() || p == rest.data()) return (bad = true, 0.0);
    rest.remove_prefix(static_cast<std::size_t>(p - rest.data()));
    return v;
  }

  std::int64_t take_i64() {
    if (bad) return 0;
    std::int64_t v = 0;
    const auto [p, ec] =
        std::from_chars(rest.data(), rest.data() + rest.size(), v);
    if (ec != std::errc() || p == rest.data()) return (bad = true, 0);
    rest.remove_prefix(static_cast<std::size_t>(p - rest.data()));
    return v;
  }

  /// `len` raw bytes (length-prefixed field bodies).
  std::string take_bytes(std::uint64_t len) {
    if (bad) return {};
    if (rest.size() < len) return (bad = true, std::string());
    std::string v(rest.substr(0, len));
    rest.remove_prefix(len);
    return v;
  }

  bool take_word(std::string_view word) {
    if (bad || rest.substr(0, word.size()) != word) return (bad = true, false);
    rest.remove_prefix(word.size());
    return true;
  }

  bool done() const { return !bad && rest.empty(); }
};

/// Payload bodies are capped by the frame layer; re-assert here so a decoder
/// fed a corrupt length never allocates unboundedly.
constexpr std::uint64_t kMaxField = 16u << 20;
constexpr std::uint64_t kMaxVectorElems = 1u << 22;

}  // namespace

Verb peek_verb(std::string_view request) {
  if (request.substr(0, 6) == "apply ") return Verb::kApply;
  if (request.substr(0, 3) == "hb ") return Verb::kHeartbeat;
  if (request.substr(0, 5) == "tail ") return Verb::kTail;
  if (request.substr(0, 4) == "seg ") return Verb::kSegment;
  return Verb::kUnknown;
}

std::string encode_rpc_error(std::string_view message) {
  std::string out = "err ";
  append_u64(out, message.size());
  out.push_back('\n');
  out.append(message);
  return out;
}

// -- apply --------------------------------------------------------------------

std::string encode_apply(const ApplyRequest& request) {
  std::string out = "apply ";
  append_u64(out, request.term);
  out.push_back(' ');
  append_u64(out, request.seq);
  out.push_back(' ');
  append_u64(out, request.uploader);
  out.push_back(' ');
  append_u64(out, request.payload.size());
  out.push_back('\n');
  out.append(request.payload);
  return out;
}

Expected<ApplyRequest, std::string> decode_apply(std::string_view request) {
  using Result = Expected<ApplyRequest, std::string>;
  Cursor c{request};
  c.take_word("apply ");
  ApplyRequest out;
  out.term = c.take_u64();
  c.take(' ');
  out.seq = c.take_u64();
  c.take(' ');
  out.uploader = c.take_u64();
  c.take(' ');
  const std::uint64_t len = c.take_u64();
  if (!c.bad && len > kMaxField) c.bad = true;
  c.take('\n');
  out.payload = c.take_bytes(len);
  if (!c.done()) return Result::failure("rpc: malformed apply");
  return out;
}

std::string encode_frame_response(const FrameResponse& response) {
  std::string out;
  switch (response.status) {
    case FrameResponse::Status::kApplied: out = "ok "; break;
    case FrameResponse::Status::kStale: out = "stale "; break;
    case FrameResponse::Status::kGap: out = "gap "; break;
    case FrameResponse::Status::kFenced: out = "fenced "; break;
    case FrameResponse::Status::kError: return encode_rpc_error(response.error);
  }
  append_u64(out, response.value);
  return out;
}

Expected<FrameResponse, std::string> decode_frame_response(
    std::string_view bytes) {
  using Result = Expected<FrameResponse, std::string>;
  FrameResponse out;
  Cursor c{bytes};
  if (bytes.substr(0, 3) == "ok ") {
    c.take_word("ok ");
    out.status = FrameResponse::Status::kApplied;
  } else if (bytes.substr(0, 6) == "stale ") {
    c.take_word("stale ");
    out.status = FrameResponse::Status::kStale;
  } else if (bytes.substr(0, 4) == "gap ") {
    c.take_word("gap ");
    out.status = FrameResponse::Status::kGap;
  } else if (bytes.substr(0, 7) == "fenced ") {
    c.take_word("fenced ");
    out.status = FrameResponse::Status::kFenced;
  } else if (bytes.substr(0, 4) == "err ") {
    c.take_word("err ");
    const std::uint64_t len = c.take_u64();
    if (!c.bad && len > kMaxField) c.bad = true;
    c.take('\n');
    out.status = FrameResponse::Status::kError;
    out.error = c.take_bytes(len);
    if (!c.done()) return Result::failure("rpc: malformed err response");
    return out;
  } else {
    return Result::failure("rpc: unknown frame response");
  }
  out.value = c.take_u64();
  if (!c.done()) return Result::failure("rpc: malformed frame response");
  return out;
}

// -- heartbeat ----------------------------------------------------------------

std::string encode_heartbeat(const HeartbeatRequest& request) {
  std::string out = "hb ";
  append_u64(out, request.term);
  out.push_back(' ');
  append_u64(out, request.leader_next_seq);
  return out;
}

Expected<HeartbeatRequest, std::string> decode_heartbeat(
    std::string_view request) {
  using Result = Expected<HeartbeatRequest, std::string>;
  Cursor c{request};
  c.take_word("hb ");
  HeartbeatRequest out;
  out.term = c.take_u64();
  c.take(' ');
  out.leader_next_seq = c.take_u64();
  if (!c.done()) return Result::failure("rpc: malformed heartbeat");
  return out;
}

// -- tail ---------------------------------------------------------------------

std::string encode_tail(const TailRequest& request) {
  std::string out = "tail ";
  append_u64(out, request.from_seq);
  out.push_back(' ');
  append_u64(out, request.max_frames);
  return out;
}

Expected<TailRequest, std::string> decode_tail(std::string_view request) {
  using Result = Expected<TailRequest, std::string>;
  Cursor c{request};
  c.take_word("tail ");
  TailRequest out;
  out.from_seq = c.take_u64();
  c.take(' ');
  out.max_frames = c.take_u64();
  if (!c.done()) return Result::failure("rpc: malformed tail request");
  return out;
}

std::string encode_tail_response(const std::vector<TailFrame>& frames) {
  std::string out = "frames ";
  append_u64(out, frames.size());
  for (const TailFrame& f : frames) {
    out.push_back('\n');
    append_u64(out, f.seq);
    out.push_back(' ');
    append_u64(out, f.uploader);
    out.push_back(' ');
    append_u64(out, f.payload.size());
    out.push_back('\n');
    out.append(f.payload);
  }
  return out;
}

Expected<std::vector<TailFrame>, std::string> decode_tail_response(
    std::string_view bytes) {
  using Result = Expected<std::vector<TailFrame>, std::string>;
  if (bytes.substr(0, 4) == "err ") {
    Cursor c{bytes};
    c.take_word("err ");
    const std::uint64_t len = c.take_u64();
    if (!c.bad && len > kMaxField) c.bad = true;
    c.take('\n');
    const std::string msg = c.take_bytes(len);
    if (!c.done()) return Result::failure("rpc: malformed err response");
    return Result::failure(msg);
  }
  Cursor c{bytes};
  c.take_word("frames ");
  const std::uint64_t n = c.take_u64();
  if (!c.bad && n > kMaxVectorElems) c.bad = true;
  std::vector<TailFrame> out;
  if (!c.bad) out.reserve(n);
  for (std::uint64_t i = 0; i < n && !c.bad; ++i) {
    TailFrame f;
    c.take('\n');
    f.seq = c.take_u64();
    c.take(' ');
    f.uploader = c.take_u64();
    c.take(' ');
    const std::uint64_t len = c.take_u64();
    if (!c.bad && len > kMaxField) c.bad = true;
    c.take('\n');
    f.payload = c.take_bytes(len);
    out.push_back(std::move(f));
  }
  if (!c.done()) return Result::failure("rpc: malformed tail response");
  return out;
}

// -- segment ------------------------------------------------------------------

std::string encode_segment(const SegmentRequest& request) {
  const wifi::ScannedUpload& u = request.upload;
  std::string out = "seg ";
  append_u64(out, u.source_traj_id);
  out.push_back(' ');
  append_u64(out, u.positions.size());
  out.push_back(' ');
  append_u64(out, request.top_k);
  for (std::size_t i = 0; i < u.positions.size(); ++i) {
    out.push_back('\n');
    append_double(out, u.positions[i].east);
    out.push_back(' ');
    append_double(out, u.positions[i].north);
    out.push_back(' ');
    const wifi::WifiScan& scan = i < u.scans.size() ? u.scans[i] : wifi::WifiScan{};
    append_u64(out, scan.size());
    for (const wifi::ApObservation& ap : scan) {
      out.push_back(' ');
      append_u64(out, ap.mac);
      out.push_back(' ');
      char buf[16];
      const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), ap.rssi_dbm);
      out.append(buf, p);
    }
  }
  return out;
}

Expected<SegmentRequest, std::string> decode_segment(std::string_view request) {
  using Result = Expected<SegmentRequest, std::string>;
  Cursor c{request};
  c.take_word("seg ");
  SegmentRequest out;
  out.upload.source_traj_id = static_cast<std::uint32_t>(c.take_u64());
  c.take(' ');
  const std::uint64_t n = c.take_u64();
  c.take(' ');
  out.top_k = static_cast<std::size_t>(c.take_u64());
  if (!c.bad && n > kMaxVectorElems) c.bad = true;
  if (!c.bad) {
    out.upload.positions.reserve(n);
    out.upload.scans.reserve(n);
  }
  for (std::uint64_t i = 0; i < n && !c.bad; ++i) {
    c.take('\n');
    Enu pos;
    pos.east = c.take_double();
    c.take(' ');
    pos.north = c.take_double();
    c.take(' ');
    const std::uint64_t aps = c.take_u64();
    if (!c.bad && aps > kMaxVectorElems) c.bad = true;
    wifi::WifiScan scan;
    if (!c.bad) scan.reserve(aps);
    for (std::uint64_t a = 0; a < aps && !c.bad; ++a) {
      c.take(' ');
      wifi::ApObservation ap;
      ap.mac = c.take_u64();
      c.take(' ');
      ap.rssi_dbm = static_cast<int>(c.take_i64());
      scan.push_back(ap);
    }
    out.upload.positions.push_back(pos);
    out.upload.scans.push_back(std::move(scan));
  }
  if (!c.done()) return Result::failure("rpc: malformed segment request");
  return out;
}

std::string encode_segment_response(const SegmentResponse& response) {
  std::string out = "segok ";
  append_u64(out, response.features.size());
  out.push_back(' ');
  append_u64(out, response.scores.size());
  out.push_back('\n');
  for (std::size_t i = 0; i < response.features.size(); ++i) {
    if (i != 0) out.push_back(' ');
    append_double(out, response.features[i]);
  }
  out.push_back('\n');
  for (std::size_t i = 0; i < response.scores.size(); ++i) {
    if (i != 0) out.push_back(' ');
    append_double(out, response.scores[i]);
  }
  return out;
}

Expected<SegmentResponse, std::string> decode_segment_response(
    std::string_view bytes) {
  using Result = Expected<SegmentResponse, std::string>;
  if (bytes.substr(0, 4) == "err ") {
    Cursor c{bytes};
    c.take_word("err ");
    const std::uint64_t len = c.take_u64();
    if (!c.bad && len > kMaxField) c.bad = true;
    c.take('\n');
    const std::string msg = c.take_bytes(len);
    if (!c.done()) return Result::failure("rpc: malformed err response");
    return Result::failure(msg);
  }
  Cursor c{bytes};
  c.take_word("segok ");
  const std::uint64_t nf = c.take_u64();
  c.take(' ');
  const std::uint64_t ns = c.take_u64();
  c.take('\n');
  if (!c.bad && (nf > kMaxVectorElems || ns > kMaxVectorElems)) c.bad = true;
  SegmentResponse out;
  if (!c.bad) {
    out.features.reserve(nf);
    out.scores.reserve(ns);
  }
  for (std::uint64_t i = 0; i < nf && !c.bad; ++i) {
    if (i != 0) c.take(' ');
    out.features.push_back(c.take_double());
  }
  c.take('\n');
  for (std::uint64_t i = 0; i < ns && !c.bad; ++i) {
    if (i != 0) c.take(' ');
    out.scores.push_back(c.take_double());
  }
  if (!c.done()) return Result::failure("rpc: malformed segment response");
  return out;
}

}  // namespace trajkit::net
