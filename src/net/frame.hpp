// Length-prefixed wire frames for the UDS transport.
//
// Every message on a stream socket is one frame:
//
//   offset  size  field
//   0       4     magic "TKNF"
//   4       4     payload length (LE, capped at kMaxFramePayload)
//   8       8     msg id (LE) — echoed by the response so a client can
//                 reject a frame that does not answer its in-flight call
//   16      4     CRC32 of the payload bytes (LE, same polynomial as the
//                 durable layer)
//   20      n     payload
//
// The header is fixed-size so a reader can pull exactly kFrameHeaderBytes,
// validate, then pull exactly the payload.  A bad magic, an implausible
// length or a CRC mismatch is a hard framing error — the connection is
// poisoned and must be closed, because stream framing cannot resynchronise
// after corrupt bytes.  SimNet carries encoded frames too, so the codec is
// exercised by both backends.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/expected.hpp"

namespace trajkit::net {

inline constexpr std::size_t kFrameHeaderBytes = 20;
/// Generous for shard traffic (a segment RPC ships a few hundred points);
/// small enough that a corrupt length can never drive a giant allocation.
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;

struct FrameHeader {
  std::uint32_t payload_len = 0;
  std::uint64_t msg_id = 0;
  std::uint32_t payload_crc = 0;
};

/// Serialize header + payload into one wire buffer.
std::string encode_frame(std::uint64_t msg_id, std::string_view payload);

/// Parse and validate a header (magic, length cap).  `bytes` must hold at
/// least kFrameHeaderBytes.
Expected<FrameHeader, std::string> decode_frame_header(std::string_view bytes);

/// Validate a payload against its header's CRC.
Expected<bool, std::string> check_frame_payload(const FrameHeader& header,
                                                std::string_view payload);

/// Decode one complete frame (header + payload) from `bytes`; rejects
/// trailing garbage.  Returns the payload.
Expected<std::string, std::string> decode_frame(std::string_view bytes,
                                                std::uint64_t* msg_id = nullptr);

}  // namespace trajkit::net
