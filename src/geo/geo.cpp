#include "geo/geo.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace trajkit {
namespace {

constexpr double kDegToRad = M_PI / 180.0;

}  // namespace

double distance(const Enu& a, const Enu& b) {
  return std::hypot(a.east - b.east, a.north - b.north);
}

double distance_sq(const Enu& a, const Enu& b) {
  const double de = a.east - b.east;
  const double dn = a.north - b.north;
  return de * de + dn * dn;
}

double haversine_m(const LatLon& a, const LatLon& b) {
  const double lat1 = a.lat * kDegToRad;
  const double lat2 = b.lat * kDegToRad;
  const double dlat = (b.lat - a.lat) * kDegToRad;
  const double dlon = (b.lon - a.lon) * kDegToRad;
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusM * std::asin(std::min(1.0, std::sqrt(h)));
}

double heading_rad(const Enu& a, const Enu& b) {
  return std::atan2(b.north - a.north, b.east - a.east);
}

double heading_diff(double h1, double h2) {
  double d = h2 - h1;
  while (d > M_PI) d -= 2.0 * M_PI;
  while (d <= -M_PI) d += 2.0 * M_PI;
  return d;
}

LocalProjection::LocalProjection(LatLon origin)
    : origin_(origin),
      metres_per_deg_lat_(kEarthRadiusM * kDegToRad),
      metres_per_deg_lon_(kEarthRadiusM * kDegToRad * std::cos(origin.lat * kDegToRad)) {}

Enu LocalProjection::to_enu(const LatLon& p) const {
  return {(p.lon - origin_.lon) * metres_per_deg_lon_,
          (p.lat - origin_.lat) * metres_per_deg_lat_};
}

LatLon LocalProjection::to_latlon(const Enu& p) const {
  return {origin_.lat + p.north / metres_per_deg_lat_,
          origin_.lon + p.east / metres_per_deg_lon_};
}

std::vector<Enu> LocalProjection::to_enu(const std::vector<LatLon>& ps) const {
  std::vector<Enu> out;
  out.reserve(ps.size());
  for (const auto& p : ps) out.push_back(to_enu(p));
  return out;
}

std::vector<LatLon> LocalProjection::to_latlon(const std::vector<Enu>& ps) const {
  std::vector<LatLon> out;
  out.reserve(ps.size());
  for (const auto& p : ps) out.push_back(to_latlon(p));
  return out;
}

bool BoundingBox::contains(const Enu& p) const {
  return p.east >= min_east && p.east <= max_east && p.north >= min_north &&
         p.north <= max_north;
}

BoundingBox BoundingBox::expanded(double margin) const {
  return {min_east - margin, min_north - margin, max_east + margin, max_north + margin};
}

BoundingBox BoundingBox::of(const std::vector<Enu>& pts) {
  BoundingBox box;
  if (pts.empty()) return box;
  box.min_east = box.max_east = pts.front().east;
  box.min_north = box.max_north = pts.front().north;
  for (const auto& p : pts) {
    box.min_east = std::min(box.min_east, p.east);
    box.max_east = std::max(box.max_east, p.east);
    box.min_north = std::min(box.min_north, p.north);
    box.max_north = std::max(box.max_north, p.north);
  }
  return box;
}

TileId tile_of(const Enu& p, double tile_m) {
  if (!(tile_m > 0.0)) {
    throw std::invalid_argument("tile_of: tile size must be positive");
  }
  return {static_cast<std::int64_t>(std::floor(p.east / tile_m)),
          static_cast<std::int64_t>(std::floor(p.north / tile_m))};
}

double point_segment_distance(const Enu& p, const Enu& a, const Enu& b) {
  const Enu ab = b - a;
  const double len_sq = ab.east * ab.east + ab.north * ab.north;
  if (len_sq <= 0.0) return distance(p, a);
  const Enu ap = p - a;
  double t = (ap.east * ab.east + ap.north * ab.north) / len_sq;
  t = std::clamp(t, 0.0, 1.0);
  return distance(p, a + ab * t);
}

double point_polyline_distance(const Enu& p, const std::vector<Enu>& polyline) {
  if (polyline.empty()) return std::numeric_limits<double>::infinity();
  if (polyline.size() == 1) return distance(p, polyline.front());
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i + 1 < polyline.size(); ++i) {
    best = std::min(best, point_segment_distance(p, polyline[i], polyline[i + 1]));
  }
  return best;
}

}  // namespace trajkit
