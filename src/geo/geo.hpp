// Geodesy primitives: WGS-84 coordinates, a local east-north (ENU metre)
// frame, distances and bearings.
//
// All attack and detection math in trajkit runs in a local ENU frame centred
// on the scenario area; trajectories store lat/lon and are projected with
// LocalProjection.  Over the few-kilometre areas the paper evaluates
// (3.4-5.9 hm^2 commercial areas in Nanjing), the equirectangular projection
// error is far below GPS noise (< 1 cm), so no full geodesic machinery is
// needed.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace trajkit {

/// Mean Earth radius in metres (IUGG).
inline constexpr double kEarthRadiusM = 6371008.8;

/// WGS-84 geographic coordinate in decimal degrees.
struct LatLon {
  double lat = 0.0;
  double lon = 0.0;

  friend bool operator==(const LatLon&, const LatLon&) = default;
};

/// Position in a local east-north frame, metres.
struct Enu {
  double east = 0.0;
  double north = 0.0;

  Enu operator+(const Enu& o) const { return {east + o.east, north + o.north}; }
  Enu operator-(const Enu& o) const { return {east - o.east, north - o.north}; }
  Enu operator*(double s) const { return {east * s, north * s}; }

  double norm() const { return std::hypot(east, north); }
  friend bool operator==(const Enu&, const Enu&) = default;
};

/// Euclidean distance in the ENU plane, metres.
double distance(const Enu& a, const Enu& b);

/// Squared Euclidean distance in the ENU plane, square metres.
double distance_sq(const Enu& a, const Enu& b);

/// Great-circle (haversine) distance in metres.
double haversine_m(const LatLon& a, const LatLon& b);

/// Heading of the displacement a->b in radians, in (-pi, pi], measured from
/// east counter-clockwise (standard math convention in the ENU plane).
double heading_rad(const Enu& a, const Enu& b);

/// Smallest signed difference between two headings, in (-pi, pi].
double heading_diff(double h1, double h2);

/// Equirectangular projection around a fixed origin.
///
/// Invertible, metre-accurate at city scale; `to_enu(to_latlon(p)) == p` up
/// to floating-point rounding.
class LocalProjection {
 public:
  explicit LocalProjection(LatLon origin);

  const LatLon& origin() const { return origin_; }

  Enu to_enu(const LatLon& p) const;
  LatLon to_latlon(const Enu& p) const;

  std::vector<Enu> to_enu(const std::vector<LatLon>& ps) const;
  std::vector<LatLon> to_latlon(const std::vector<Enu>& ps) const;

 private:
  LatLon origin_;
  double metres_per_deg_lat_;
  double metres_per_deg_lon_;
};

/// Axis-aligned bounding box in the ENU plane.
struct BoundingBox {
  double min_east = 0.0;
  double min_north = 0.0;
  double max_east = 0.0;
  double max_north = 0.0;

  double width() const { return max_east - min_east; }
  double height() const { return max_north - min_north; }
  double area() const { return width() * height(); }
  bool contains(const Enu& p) const;
  /// Grow symmetrically by `margin` metres on every side.
  BoundingBox expanded(double margin) const;

  static BoundingBox of(const std::vector<Enu>& pts);
};

/// Square map tile in the ENU plane, used as the unit of geo-sharding: the
/// serving layer partitions the crowdsourced reference world by tile, not by
/// point, so that ownership is a pure function of position (no global point
/// directory) and consistent hashing can move whole tiles between shards.
struct TileId {
  std::int64_t tx = 0;  ///< floor(east / tile_m)
  std::int64_t ty = 0;  ///< floor(north / tile_m)

  friend bool operator==(const TileId&, const TileId&) = default;

  /// Stable 64-bit key of the tile (bit-packed coordinates), suitable as a
  /// hash-ring input.  Two tiles collide only if they are equal.
  std::uint64_t key() const {
    return (static_cast<std::uint64_t>(tx) << 32) ^
           (static_cast<std::uint64_t>(ty) & 0xffffffffull);
  }
};

/// The tile containing `p` for a given tile edge length (metres).  Points
/// exactly on a tile edge belong to the tile on their east/north side
/// (floor), so ownership is unambiguous for boundary-pinned trajectories.
TileId tile_of(const Enu& p, double tile_m);

/// Distance from point p to the segment [a, b], metres.
double point_segment_distance(const Enu& p, const Enu& a, const Enu& b);

/// Distance from p to the closest segment of the polyline, metres.
/// A single-point polyline degenerates to the point distance; an empty
/// polyline yields +infinity.
double point_polyline_distance(const Enu& p, const std::vector<Enu>& polyline);

}  // namespace trajkit
