#include "sim/dataset.hpp"

#include <cmath>
#include <stdexcept>

namespace trajkit::sim {
namespace {

constexpr std::size_t kMaxAttempts = 64;

}  // namespace

const LocalProjection& sim_projection() {
  static const LocalProjection proj({0.0, 0.0});
  return proj;
}

TrajectorySimulator::TrajectorySimulator(const map::RoadNetwork& network,
                                         GpsErrorConfig gps_config)
    : network_(&network), nav_(network), gps_(gps_config) {
  if (network.node_count() < 2) {
    throw std::invalid_argument("TrajectorySimulator: network too small");
  }
}

std::vector<Enu> TrajectorySimulator::random_route(Mode mode, double min_length_m,
                                                   Rng& rng) const {
  const auto node_count = static_cast<std::int64_t>(network_->node_count());
  for (std::size_t attempt = 0; attempt < kMaxAttempts; ++attempt) {
    std::vector<Enu> polyline;
    double total = 0.0;
    auto current = static_cast<std::size_t>(rng.uniform_int(0, node_count - 1));
    std::size_t legs = 0;
    while (total < min_length_m && legs < 16) {
      const auto target = static_cast<std::size_t>(rng.uniform_int(0, node_count - 1));
      if (target == current) continue;
      const auto path = map::shortest_path(*network_, current, target, mode);
      ++legs;
      if (!path || path->nodes.size() < 2) continue;
      auto leg = map::path_polyline(*network_, *path);
      if (polyline.empty()) {
        polyline = std::move(leg);
      } else {
        polyline.insert(polyline.end(), leg.begin() + 1, leg.end());
      }
      total += path->length_m;
      current = target;
    }
    if (total >= min_length_m) return polyline;
  }
  throw std::runtime_error("random_route: could not build a long-enough route");
}

SimulatedTrajectory TrajectorySimulator::simulate_real(Mode mode, std::size_t points,
                                                       double interval_s,
                                                       Rng& rng) const {
  const MobilityParams params = MobilityParams::for_mode(mode);
  // Route long enough that the mobility model cannot run off the end even at
  // +3 sigma speed with no stops.
  const double need_m = (params.mean_speed_mps + 3.0 * params.speed_stddev) *
                            static_cast<double>(points) * interval_s +
                        4.0 * params.mean_speed_mps;
  for (std::size_t attempt = 0; attempt < kMaxAttempts; ++attempt) {
    const auto route = random_route(mode, need_m, rng);
    auto result = simulate_on_route(route, mode, points, interval_s, rng);
    if (result.reported.size() == points) return result;
  }
  throw std::runtime_error("simulate_real: failed to produce a full trajectory");
}

SimulatedTrajectory TrajectorySimulator::simulate_on_route(
    const std::vector<Enu>& route, Mode mode, std::size_t points, double interval_s,
    Rng& rng) const {
  const MobilityParams params = MobilityParams::for_mode(mode);
  SimulatedTrajectory out;
  out.route = route;
  out.true_positions = simulate_motion(route, params, interval_s, points, rng);
  const auto noisy = gps_.corrupt(out.true_positions, rng);
  out.reported = Trajectory::from_enu(noisy, sim_projection(), mode, interval_s);
  return out;
}

SimulatedTrajectory TrajectorySimulator::navigation_trajectory(Mode mode,
                                                               std::size_t points,
                                                               double interval_s,
                                                               Rng& rng) const {
  const double speed = map::free_flow_speed_mps(mode, map::RoadClass::kLocal);
  const double need_m =
      speed * static_cast<double>(points + 2) * interval_s + 4.0 * speed;
  for (std::size_t attempt = 0; attempt < kMaxAttempts; ++attempt) {
    SimulatedTrajectory out;
    out.route = random_route(mode, need_m, rng);
    // The paper sets "a reasonable speed" from the route feedback; our
    // navigation substrate recommends the mode's free-flow speed mix, which
    // for a resampled polyline reduces to constant-speed sampling.
    auto sampled = map::sample_route(out.route, speed, interval_s);
    if (sampled.size() < points) continue;
    sampled.resize(points);
    out.true_positions = sampled;
    out.reported = Trajectory::from_enu(sampled, sim_projection(), mode, interval_s);
    return out;
  }
  throw std::runtime_error("navigation_trajectory: failed to sample a route");
}

ScannedTrajectory attach_scans(const SimulatedTrajectory& traj, const WifiWorld& world,
                               Rng& rng) {
  ScannedTrajectory out;
  out.reported = traj.reported;
  out.true_positions = traj.true_positions;
  out.scans.reserve(traj.true_positions.size());
  for (const auto& p : traj.true_positions) out.scans.push_back(world.scan(p, rng));
  return out;
}

}  // namespace trajkit::sim
