#include "sim/gps.hpp"

#include <cmath>
#include <stdexcept>

namespace trajkit::sim {

GpsErrorModel::GpsErrorModel(GpsErrorConfig config) : config_(config) {
  if (config_.sigma_m < 0.0) {
    throw std::invalid_argument("GpsErrorModel: sigma must be non-negative");
  }
  if (config_.correlation < 0.0 || config_.correlation >= 1.0) {
    throw std::invalid_argument("GpsErrorModel: correlation must be in [0, 1)");
  }
}

std::vector<Enu> GpsErrorModel::corrupt(const std::vector<Enu>& truth, Rng& rng) const {
  std::vector<Enu> out;
  out.reserve(truth.size());
  const double rho = config_.correlation;
  const double innovation = std::sqrt(1.0 - rho * rho) * config_.sigma_m;
  Enu err{};
  bool first = true;
  for (const auto& p : truth) {
    if (first) {
      err = {rng.normal(0.0, config_.sigma_m), rng.normal(0.0, config_.sigma_m)};
      first = false;
    } else {
      err = {rho * err.east + rng.normal(0.0, innovation),
             rho * err.north + rng.normal(0.0, innovation)};
    }
    out.push_back(p + err);
  }
  return out;
}

Enu GpsErrorModel::sample_error(Rng& rng) const {
  return {rng.normal(0.0, config_.sigma_m), rng.normal(0.0, config_.sigma_m)};
}

}  // namespace trajkit::sim
