// WiFi radio environment simulator.
//
// Substitute for the paper's real-world signal collection (Sec. IV-B):
// access points are deployed along roads (storefronts), and the RSSI observed
// at a position follows the log-distance path-loss model plus two noise
// terms with very different roles:
//   * a *static* spatially-correlated shadowing field per AP (sum of random
//     sinusoids, smooth over metres) — revisiting the same spot reproduces
//     the same value, which is what makes crowdsourced RPD histograms
//     meaningful, and what makes RSSI *location-dependent at metre scale*,
//     the property the defense exploits;
//   * per-scan i.i.d. device noise — the irreducible jitter that makes an
//     RPD a distribution instead of a constant.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "geo/geo.hpp"
#include "map/roadnet.hpp"
#include "wifi/scan.hpp"

namespace trajkit::sim {

// Scan vocabulary lives in wifi/scan.hpp; the simulator produces what the
// detector consumes.
using wifi::ApObservation;
using wifi::WifiScan;

struct WifiWorldConfig {
  std::size_t ap_count = 450;
  double tx_dbm_mean = -28.0;   ///< RSSI at 1 m
  double tx_dbm_stddev = 4.0;
  double ple_mean = 3.0;        ///< path-loss exponent (urban outdoor)
  double ple_stddev = 0.25;
  double shadow_sigma_db = 3.5;
  double shadow_wavelength_min_m = 8.0;
  double shadow_wavelength_max_m = 40.0;
  double device_noise_db = 1.2;
  int visibility_floor_dbm = -85;
  double ap_road_offset_m = 7.0;  ///< storefront offset from the road centreline
};

/// A deployed access point with its private propagation parameters.
class AccessPoint {
 public:
  static constexpr std::size_t kShadowComponents = 6;

  AccessPoint(std::uint64_t mac, Enu pos, double tx_dbm, double ple,
              const WifiWorldConfig& config, Rng& rng);

  std::uint64_t mac() const { return mac_; }
  const Enu& pos() const { return pos_; }

  /// Deterministic shadowing value at a position, dB.
  double shadow_db(const Enu& p) const;

  /// Mean (noise-free) RSSI at a position, dBm.
  double mean_rssi_dbm(const Enu& p) const;

  /// Maximum distance at which the AP can clear `floor_dbm` given a noise
  /// allowance, metres.  Used to bound scan queries.
  double max_range_m(int floor_dbm, double margin_db) const;

 private:
  struct ShadowComponent {
    double kx, ky, phase, amplitude;
  };

  std::uint64_t mac_;
  Enu pos_;
  double tx_dbm_;
  double ple_;
  std::array<ShadowComponent, kShadowComponents> shadow_;
};

/// The deployed radio environment of one evaluation area.
class WifiWorld {
 public:
  /// Deploy `config.ap_count` APs along the road network's edges.
  static WifiWorld deploy(const map::RoadNetwork& net, const WifiWorldConfig& config,
                          Rng& rng);

  /// Scan at a (true) position: every AP whose noisy RSSI clears the
  /// visibility floor, sorted by descending RSSI.
  WifiScan scan(const Enu& pos, Rng& rng) const;

  const std::vector<AccessPoint>& aps() const { return aps_; }
  const WifiWorldConfig& config() const { return config_; }

 private:
  WifiWorld(WifiWorldConfig config, BoundingBox bounds);

  /// Uniform grid over the deployment bounds for range-limited AP lookup.
  std::vector<std::size_t> aps_near(const Enu& pos) const;
  std::size_t cell_of(const Enu& pos) const;

  WifiWorldConfig config_;
  BoundingBox bounds_;
  double cell_size_m_ = 50.0;
  std::size_t grid_w_ = 1;
  std::size_t grid_h_ = 1;
  double query_radius_m_ = 0.0;
  std::vector<AccessPoint> aps_;
  std::vector<std::vector<std::size_t>> grid_;
};

}  // namespace trajkit::sim
