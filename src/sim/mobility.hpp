// Human mobility models.
//
// Generates the *true* motion of a walker / cyclist / driver along a route
// polyline, producing one position per sampling tick.  The dynamics give
// trajectories the motion characteristics the paper's classifiers key on:
//   * speed follows an Ornstein-Uhlenbeck process around a per-mode mean
//     (humans do not hold constant speed — this is what separates real traces
//     from naively resampled navigation routes),
//   * acceleration is bounded per mode,
//   * sharp turns force a slowdown proportional to the corner angle,
//   * intersections can trigger full stops (traffic lights, crossings).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "geo/geo.hpp"
#include "traj/trajectory.hpp"

namespace trajkit::sim {

/// Per-mode dynamics parameters.
struct MobilityParams {
  double mean_speed_mps = 1.4;
  double speed_stddev = 0.25;       ///< OU stationary std-dev
  double speed_reversion = 0.3;     ///< OU mean-reversion rate (1/s)
  double max_accel_mps2 = 0.8;
  double min_speed_mps = 0.2;
  double corner_slowdown = 0.6;     ///< fraction of speed shed on a 90-degree turn
  double stop_probability = 0.08;   ///< chance of a stop at each polyline vertex
  double stop_duration_mean_s = 6.0;

  /// Paper-calibrated defaults per mode.
  static MobilityParams for_mode(Mode mode);
};

/// Simulate true motion along `route` (a road polyline), emitting a position
/// every `interval_s` seconds until the route end is reached or `max_points`
/// positions exist.  The first position is the route start.
std::vector<Enu> simulate_motion(const std::vector<Enu>& route,
                                 const MobilityParams& params, double interval_s,
                                 std::size_t max_points, Rng& rng);

}  // namespace trajkit::sim
