// Dataset builders: the offline equivalents of the paper's OSM, AN and
// WiFi-collection datasets.
//
//   * simulate_real()      -> one "OSM-like" genuine trajectory: human motion
//                             dynamics along a routed path + correlated GPS
//                             error on the reported positions.
//   * navigation_route() / navigation_trajectory()
//                          -> one "AN-like" fake: a navigation polyline
//                             resampled at the recommended constant speed.
//   * attach_scans()       -> the WiFi collection step: a scan at every
//                             (true) position of a trajectory, as the paper's
//                             signal-collection app records.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "map/nav.hpp"
#include "sim/gps.hpp"
#include "sim/mobility.hpp"
#include "sim/wifi_world.hpp"
#include "traj/trajectory.hpp"

namespace trajkit::sim {

/// The canonical projection of the simulated world: the synthetic city's ENU
/// frame is anchored at lat/lon (0, 0).  Every module that needs to project a
/// simulated trajectory must use this projection so that metres round-trip
/// exactly.
const LocalProjection& sim_projection();

/// A simulated genuine trajectory: what the client uploads plus the ground
/// truth the simulator knows.
struct SimulatedTrajectory {
  Trajectory reported;              ///< GPS-noisy positions (what the LSP sees)
  std::vector<Enu> true_positions;  ///< noise-free motion ground truth
  std::vector<Enu> route;           ///< underlying road polyline
};

/// A trajectory with WiFi scans attached to every point (Sec. III design
/// goal: P_i = [loc_i, RSSI_i, MAC_i]).
struct ScannedTrajectory {
  Trajectory reported;
  std::vector<Enu> true_positions;
  std::vector<WifiScan> scans;  ///< one scan per point, taken at the true position
};

class TrajectorySimulator {
 public:
  TrajectorySimulator(const map::RoadNetwork& network, GpsErrorConfig gps_config = {});

  const map::RoadNetwork& network() const { return *network_; }
  const GpsErrorModel& gps() const { return gps_; }

  /// Random multi-leg road route of at least `min_length_m`, traversable by
  /// `mode`.  Legs chain random intermediate destinations until long enough.
  std::vector<Enu> random_route(Mode mode, double min_length_m, Rng& rng) const;

  /// Genuine trajectory of exactly `points` samples every `interval_s`
  /// seconds: mobility dynamics on a random route + GPS error.
  SimulatedTrajectory simulate_real(Mode mode, std::size_t points, double interval_s,
                                    Rng& rng) const;

  /// Genuine trajectory on a *given* route (same-route repetitions for the
  /// MinD experiment).
  SimulatedTrajectory simulate_on_route(const std::vector<Enu>& route, Mode mode,
                                        std::size_t points, double interval_s,
                                        Rng& rng) const;

  /// AN-like navigation fake: route polyline resampled at the navigation
  /// service's recommended speed (no human dynamics, no GPS noise — the naive
  /// attack adds its own noise).  Returns the route too.
  SimulatedTrajectory navigation_trajectory(Mode mode, std::size_t points,
                                            double interval_s, Rng& rng) const;

 private:
  const map::RoadNetwork* network_;
  map::NavigationService nav_;
  GpsErrorModel gps_;
};

/// Attach a WiFi scan (taken at each true position) to a trajectory.
ScannedTrajectory attach_scans(const SimulatedTrajectory& traj, const WifiWorld& world,
                               Rng& rng);

}  // namespace trajkit::sim
