// GPS receiver error model.
//
// The paper measures the receiver error empirically (500 fixes at one spot)
// and finds per-axis deviations with sigma ~= 0.5 m, defining the maximum
// position deviation R = 6*sigma = 3 m (Sec. III-C).  Real GPS error is also
// temporally correlated — consecutive fixes share most of their atmospheric/
// multipath error — which we model as a per-axis AR(1) process:
//   e_t = rho * e_{t-1} + sqrt(1 - rho^2) * N(0, sigma^2)
// The stationary distribution stays N(0, sigma^2), so the R experiment
// reproduces the paper's numbers, while the *increments* are smaller than
// i.i.d. noise — which is exactly why a naive replay (which adds fresh
// i.i.d. noise, Sec. IV-A2) is statistically detectable.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "geo/geo.hpp"

namespace trajkit::sim {

struct GpsErrorConfig {
  double sigma_m = 0.5;      ///< per-axis stationary std-dev
  double correlation = 0.8;  ///< AR(1) coefficient between consecutive fixes
};

class GpsErrorModel {
 public:
  explicit GpsErrorModel(GpsErrorConfig config = {});

  /// Noisy copy of a true position sequence (one fix per entry, in order).
  std::vector<Enu> corrupt(const std::vector<Enu>& truth, Rng& rng) const;

  /// A single independent fix error (stationary draw), for the R experiment.
  Enu sample_error(Rng& rng) const;

  const GpsErrorConfig& config() const { return config_; }

 private:
  GpsErrorConfig config_;
};

}  // namespace trajkit::sim
