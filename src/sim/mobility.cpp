#include "sim/mobility.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace trajkit::sim {
namespace {

/// Tracks an arc-length position on a polyline.
class PolylineCursor {
 public:
  explicit PolylineCursor(const std::vector<Enu>& polyline) : polyline_(&polyline) {}

  bool at_end() const { return segment_ + 1 >= polyline_->size(); }

  Enu position() const {
    if (at_end()) return polyline_->back();
    const Enu& a = (*polyline_)[segment_];
    const Enu& b = (*polyline_)[segment_ + 1];
    const double len = distance(a, b);
    const double t = len > 0.0 ? offset_ / len : 0.0;
    return a + (b - a) * t;
  }

  /// Advance by `metres`; returns the number of polyline vertices crossed.
  std::size_t advance(double metres) {
    std::size_t crossed = 0;
    while (metres > 0.0 && !at_end()) {
      const double len = distance((*polyline_)[segment_], (*polyline_)[segment_ + 1]);
      const double left = len - offset_;
      if (metres < left) {
        offset_ += metres;
        return crossed;
      }
      metres -= left;
      ++segment_;
      offset_ = 0.0;
      ++crossed;
    }
    return crossed;
  }

  /// Interior angle change at the upcoming vertex, radians in [0, pi];
  /// 0 when there is no next corner.
  double upcoming_turn() const {
    if (segment_ + 2 >= polyline_->size()) return 0.0;
    const double h1 = heading_rad((*polyline_)[segment_], (*polyline_)[segment_ + 1]);
    const double h2 = heading_rad((*polyline_)[segment_ + 1], (*polyline_)[segment_ + 2]);
    return std::fabs(heading_diff(h1, h2));
  }

  /// Metres left on the current segment.
  double to_next_vertex() const {
    if (at_end()) return 0.0;
    return distance((*polyline_)[segment_], (*polyline_)[segment_ + 1]) - offset_;
  }

 private:
  const std::vector<Enu>* polyline_;
  std::size_t segment_ = 0;
  double offset_ = 0.0;
};

}  // namespace

MobilityParams MobilityParams::for_mode(Mode mode) {
  MobilityParams p;
  switch (mode) {
    case Mode::kWalking:
      p.mean_speed_mps = 1.4;
      p.speed_stddev = 0.25;
      p.speed_reversion = 0.35;
      p.max_accel_mps2 = 0.8;
      p.min_speed_mps = 0.3;
      p.corner_slowdown = 0.3;
      p.stop_probability = 0.05;
      p.stop_duration_mean_s = 4.0;
      break;
    case Mode::kCycling:
      p.mean_speed_mps = 4.5;
      p.speed_stddev = 0.7;
      p.speed_reversion = 0.25;
      p.max_accel_mps2 = 1.2;
      p.min_speed_mps = 1.0;
      p.corner_slowdown = 0.6;
      p.stop_probability = 0.07;
      p.stop_duration_mean_s = 8.0;
      break;
    case Mode::kDriving:
      p.mean_speed_mps = 10.0;
      p.speed_stddev = 2.0;
      p.speed_reversion = 0.2;
      p.max_accel_mps2 = 2.2;
      p.min_speed_mps = 2.0;
      p.corner_slowdown = 0.7;
      p.stop_probability = 0.12;
      p.stop_duration_mean_s = 15.0;
      break;
  }
  return p;
}

std::vector<Enu> simulate_motion(const std::vector<Enu>& route,
                                 const MobilityParams& params, double interval_s,
                                 std::size_t max_points, Rng& rng) {
  if (route.size() < 2) {
    throw std::invalid_argument("simulate_motion: route needs >= 2 points");
  }
  if (interval_s <= 0.0 || max_points == 0) {
    throw std::invalid_argument("simulate_motion: bad interval or max_points");
  }

  // Integrate dynamics on a fine sub-tick so accel limits act smoothly even
  // with coarse sampling intervals.
  const double dt = std::min(interval_s, 0.5);
  const auto substeps = static_cast<std::size_t>(std::round(interval_s / dt));
  const double sub_dt = interval_s / static_cast<double>(substeps);

  PolylineCursor cursor(route);
  std::vector<Enu> out;
  out.push_back(cursor.position());

  double speed = std::max(params.min_speed_mps,
                          rng.normal(params.mean_speed_mps, params.speed_stddev));
  double target = speed;
  double stop_left_s = 0.0;

  const double ou_theta = params.speed_reversion;
  const double ou_innov =
      params.speed_stddev * std::sqrt(std::max(0.0, 2.0 * ou_theta * sub_dt));

  while (out.size() < max_points && !cursor.at_end()) {
    for (std::size_t s = 0; s < substeps; ++s) {
      if (stop_left_s > 0.0) {
        stop_left_s -= sub_dt;
        speed = 0.0;
        continue;
      }
      // OU update of the target speed.
      target += ou_theta * (params.mean_speed_mps - target) * sub_dt +
                ou_innov * rng.normal();
      target = std::clamp(target, params.min_speed_mps,
                          params.mean_speed_mps + 3.0 * params.speed_stddev);

      // Corner anticipation: shed speed when a sharp turn is close.
      double limit = target;
      const double turn = cursor.upcoming_turn();
      if (turn > 0.1 && cursor.to_next_vertex() < std::max(2.0, speed * 2.0)) {
        const double shed = params.corner_slowdown * (turn / (M_PI / 2.0));
        limit = std::max(params.min_speed_mps, target * std::max(0.15, 1.0 - shed));
      }

      // Bounded acceleration toward the limit.
      const double dv = std::clamp(limit - speed, -params.max_accel_mps2 * sub_dt,
                                   params.max_accel_mps2 * sub_dt);
      speed = std::max(0.0, speed + dv);

      const std::size_t crossed = cursor.advance(speed * sub_dt);
      // Stop decision at each crossed vertex (intersection).
      for (std::size_t k = 0; k < crossed && stop_left_s <= 0.0; ++k) {
        if (rng.chance(params.stop_probability)) {
          stop_left_s = std::max(1.0, rng.normal(params.stop_duration_mean_s,
                                                 params.stop_duration_mean_s * 0.4));
          speed = 0.0;
        }
      }
      if (cursor.at_end()) break;
    }
    out.push_back(cursor.position());
  }
  return out;
}

}  // namespace trajkit::sim
