#include "sim/wifi_world.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace trajkit::sim {

AccessPoint::AccessPoint(std::uint64_t mac, Enu pos, double tx_dbm, double ple,
                         const WifiWorldConfig& config, Rng& rng)
    : mac_(mac), pos_(pos), tx_dbm_(tx_dbm), ple_(std::max(1.5, ple)) {
  // Random sinusoid field with total variance shadow_sigma^2:
  // each component contributes amplitude^2 / 2.
  const double amp =
      config.shadow_sigma_db * std::sqrt(2.0 / static_cast<double>(kShadowComponents));
  for (auto& c : shadow_) {
    const double wavelength =
        rng.uniform(config.shadow_wavelength_min_m, config.shadow_wavelength_max_m);
    const double angle = rng.uniform(0.0, 2.0 * M_PI);
    const double k = 2.0 * M_PI / wavelength;
    c.kx = k * std::cos(angle);
    c.ky = k * std::sin(angle);
    c.phase = rng.uniform(0.0, 2.0 * M_PI);
    c.amplitude = amp;
  }
}

double AccessPoint::shadow_db(const Enu& p) const {
  double s = 0.0;
  for (const auto& c : shadow_) {
    s += c.amplitude * std::sin(c.kx * p.east + c.ky * p.north + c.phase);
  }
  return s;
}

double AccessPoint::mean_rssi_dbm(const Enu& p) const {
  const double d = std::max(distance(p, pos_), 1.0);
  return tx_dbm_ - 10.0 * ple_ * std::log10(d) + shadow_db(p);
}

double AccessPoint::max_range_m(int floor_dbm, double margin_db) const {
  // tx - 10 ple log10(d) + margin >= floor  =>  d <= 10^((tx + margin - floor)/(10 ple))
  const double exponent =
      (tx_dbm_ + margin_db - static_cast<double>(floor_dbm)) / (10.0 * ple_);
  return std::pow(10.0, exponent);
}

WifiWorld::WifiWorld(WifiWorldConfig config, BoundingBox bounds)
    : config_(config), bounds_(bounds) {}

WifiWorld WifiWorld::deploy(const map::RoadNetwork& net, const WifiWorldConfig& config,
                            Rng& rng) {
  if (net.edge_count() == 0) {
    throw std::invalid_argument("WifiWorld::deploy: empty road network");
  }
  WifiWorld world(config, net.bounds().expanded(config.ap_road_offset_m + 10.0));

  // Length-weighted edge sampler: APs line the streets like storefronts.
  std::vector<double> weights;
  weights.reserve(net.edge_count());
  for (std::size_t e = 0; e < net.edge_count(); ++e) {
    weights.push_back(net.edge(e).length_m);
  }

  for (std::size_t i = 0; i < config.ap_count; ++i) {
    const std::size_t e = rng.weighted_index(weights);
    const auto& edge = net.edge(e);
    const Enu a = net.node(edge.a).pos;
    const Enu b = net.node(edge.b).pos;
    const double t = rng.uniform();
    const Enu on_road = a + (b - a) * t;
    // Perpendicular storefront offset with jitter, either side of the road.
    const double heading = heading_rad(a, b);
    const double side = rng.chance(0.5) ? 1.0 : -1.0;
    const double off = config.ap_road_offset_m * side + rng.normal(0.0, 2.0);
    const Enu pos{on_road.east - std::sin(heading) * off,
                  on_road.north + std::cos(heading) * off};

    const double tx = rng.normal(config.tx_dbm_mean, config.tx_dbm_stddev);
    const double ple = rng.normal(config.ple_mean, config.ple_stddev);
    // MACs are opaque 48-bit-style ids, deterministic from the deployment rng.
    const std::uint64_t mac = (rng.next() & 0xffffffffffffULL) | (i << 48);
    world.aps_.emplace_back(mac, pos, tx, ple, config, rng);
  }

  // Grid for range-limited scan queries.
  double max_range = 0.0;
  for (const auto& ap : world.aps_) {
    max_range = std::max(
        max_range, ap.max_range_m(config.visibility_floor_dbm,
                                  config.shadow_sigma_db + 3.0 * config.device_noise_db));
  }
  world.query_radius_m_ = max_range;
  world.cell_size_m_ = std::max(25.0, max_range / 4.0);
  world.grid_w_ = static_cast<std::size_t>(
                      std::ceil(world.bounds_.width() / world.cell_size_m_)) +
                  1;
  world.grid_h_ = static_cast<std::size_t>(
                      std::ceil(world.bounds_.height() / world.cell_size_m_)) +
                  1;
  world.grid_.assign(world.grid_w_ * world.grid_h_, {});
  for (std::size_t i = 0; i < world.aps_.size(); ++i) {
    world.grid_[world.cell_of(world.aps_[i].pos())].push_back(i);
  }
  return world;
}

std::size_t WifiWorld::cell_of(const Enu& pos) const {
  const double cx = (pos.east - bounds_.min_east) / cell_size_m_;
  const double cy = (pos.north - bounds_.min_north) / cell_size_m_;
  const auto ix = static_cast<std::size_t>(
      std::clamp(cx, 0.0, static_cast<double>(grid_w_ - 1)));
  const auto iy = static_cast<std::size_t>(
      std::clamp(cy, 0.0, static_cast<double>(grid_h_ - 1)));
  return iy * grid_w_ + ix;
}

std::vector<std::size_t> WifiWorld::aps_near(const Enu& pos) const {
  const auto reach = static_cast<long>(std::ceil(query_radius_m_ / cell_size_m_));
  const double cx = (pos.east - bounds_.min_east) / cell_size_m_;
  const double cy = (pos.north - bounds_.min_north) / cell_size_m_;
  const long ix = static_cast<long>(cx);
  const long iy = static_cast<long>(cy);
  std::vector<std::size_t> out;
  for (long dy = -reach; dy <= reach; ++dy) {
    const long y = iy + dy;
    if (y < 0 || y >= static_cast<long>(grid_h_)) continue;
    for (long dx = -reach; dx <= reach; ++dx) {
      const long x = ix + dx;
      if (x < 0 || x >= static_cast<long>(grid_w_)) continue;
      const auto& cell = grid_[static_cast<std::size_t>(y) * grid_w_ +
                               static_cast<std::size_t>(x)];
      out.insert(out.end(), cell.begin(), cell.end());
    }
  }
  return out;
}

WifiScan WifiWorld::scan(const Enu& pos, Rng& rng) const {
  WifiScan result;
  for (std::size_t i : aps_near(pos)) {
    const AccessPoint& ap = aps_[i];
    const double rssi =
        ap.mean_rssi_dbm(pos) + rng.normal(0.0, config_.device_noise_db);
    const int quantised = static_cast<int>(std::lround(rssi));
    if (quantised >= config_.visibility_floor_dbm) {
      result.push_back({ap.mac(), quantised});
    }
  }
  std::sort(result.begin(), result.end(), [](const auto& a, const auto& b) {
    return a.rssi_dbm > b.rssi_dbm || (a.rssi_dbm == b.rssi_dbm && a.mac < b.mac);
  });
  return result;
}

}  // namespace trajkit::sim
