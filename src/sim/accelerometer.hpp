// Accelerometer side-channel simulation.
//
// The paper notes (Sec. II-A) that providers may require "additional
// information ... (e.g., RSSI, accelerometer)" alongside the trajectory.
// This models the horizontal-acceleration magnitude an IMU would report at
// each trajectory sample:
//   a_t = |v_t - v_{t-1}| / dt + device noise + walking-bounce floor
// computed from the *true* motion (the device feels real physics even when
// the GPS pipe is hooked).  A forger without the sensor must fabricate these
// values; a replaying forger can replay them — the consistency check in
// baseline/accel_check.hpp quantifies both cases.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "geo/geo.hpp"
#include "traj/trajectory.hpp"

namespace trajkit::sim {

struct AccelerometerConfig {
  double noise_mps2 = 0.15;         ///< IMU noise per sample
  double walking_bounce_mps2 = 0.4;  ///< step-impact floor for pedestrians
};

/// Per-sample horizontal acceleration magnitudes (m/s^2), one per position;
/// the first two samples carry only noise/bounce (no velocity history yet).
std::vector<double> synthesize_accelerometer(const std::vector<Enu>& true_positions,
                                             double interval_s, Mode mode,
                                             const AccelerometerConfig& config,
                                             Rng& rng);

}  // namespace trajkit::sim
