#include "sim/accelerometer.hpp"

#include <cmath>
#include <stdexcept>

namespace trajkit::sim {

std::vector<double> synthesize_accelerometer(const std::vector<Enu>& true_positions,
                                             double interval_s, Mode mode,
                                             const AccelerometerConfig& config,
                                             Rng& rng) {
  if (true_positions.size() < 3) {
    throw std::invalid_argument("synthesize_accelerometer: need >= 3 positions");
  }
  if (interval_s <= 0.0) {
    throw std::invalid_argument("synthesize_accelerometer: bad interval");
  }
  const double bounce =
      mode == Mode::kWalking ? config.walking_bounce_mps2
                             : (mode == Mode::kCycling ? 0.2 : 0.05);
  std::vector<double> out(true_positions.size(), 0.0);
  for (std::size_t i = 0; i < true_positions.size(); ++i) {
    double kinematic = 0.0;
    if (i >= 2) {
      const Enu v1 = (true_positions[i - 1] - true_positions[i - 2]) * (1.0 / interval_s);
      const Enu v2 = (true_positions[i] - true_positions[i - 1]) * (1.0 / interval_s);
      kinematic = (v2 - v1).norm() / interval_s;
    }
    out[i] = std::max(0.0, kinematic + bounce * std::fabs(rng.normal()) +
                               rng.normal(0.0, config.noise_mps2));
  }
  return out;
}

}  // namespace trajkit::sim
