#include "serve/rpd_lru_cache.hpp"

#include <stdexcept>

#include "common/fault.hpp"

namespace trajkit::serve {

ShardedRpdLruCache::ShardedRpdLruCache() : ShardedRpdLruCache(Config{}) {}

ShardedRpdLruCache::ShardedRpdLruCache(Config config) : config_(config) {
  if (config_.capacity == 0) {
    throw std::invalid_argument("ShardedRpdLruCache: capacity must be positive");
  }
  if (config_.shards == 0) {
    throw std::invalid_argument("ShardedRpdLruCache: need at least one shard");
  }
  if (config_.shards > config_.capacity) config_.shards = config_.capacity;
  per_shard_capacity_ = (config_.capacity + config_.shards - 1) / config_.shards;
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::size_t ShardedRpdLruCache::shard_of(std::size_t h) const {
  // Fibonacci mixing: adjacent reference-point indices (spatially clustered,
  // hence probed together) spread across shards instead of hammering one.
  const std::uint64_t mixed = static_cast<std::uint64_t>(h) * 0x9E3779B97F4A7C15ull;
  return static_cast<std::size_t>(mixed >> 32) % shards_.size();
}

std::shared_ptr<const wifi::RpdPointStats> ShardedRpdLruCache::get_or_build(
    std::size_t h, const std::function<wifi::RpdPointStats()>& build) {
  // Before the hit path, not just the build path: a poisoned entry must fail
  // whether or not another request already cached it.
  global_faults().check(kFaultRpdShard, static_cast<std::uint64_t>(h));
  Shard& shard = *shards_[shard_of(h)];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(h);
    if (it != shard.index.end()) {
      ++shard.hits;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->second;
    }
  }
  // Miss: build outside the lock (the expensive part — a radius query plus a
  // histogram over the whole counting circle).
  auto value = std::make_shared<const wifi::RpdPointStats>(build());
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.misses;
  const auto it = shard.index.find(h);
  if (it != shard.index.end()) {
    // Another thread built the same (identical) entry while we were outside
    // the lock; keep theirs, drop ours.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->second;
  }
  shard.lru.emplace_front(h, std::move(value));
  shard.index.emplace(h, shard.lru.begin());
  while (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  return shard.lru.front().second;
}

void ShardedRpdLruCache::invalidate(const std::vector<std::size_t>& keys) {
  // Group by shard first so each affected shard is locked exactly once and
  // unaffected shards are never touched.
  std::vector<std::vector<std::size_t>> by_shard(shards_.size());
  for (const std::size_t h : keys) by_shard[shard_of(h)].push_back(h);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const std::size_t h : by_shard[s]) {
      const auto it = shard.index.find(h);
      if (it == shard.index.end()) continue;
      shard.lru.erase(it->second);
      shard.index.erase(it);
      ++shard.evictions;
    }
  }
}

std::shared_ptr<ShardedRpdLruCache> ShardedRpdLruCache::carry_forward(
    const std::unordered_set<std::size_t>& invalidated) const {
  auto next = std::make_shared<ShardedRpdLruCache>(config_);
  // Same config -> same shard_of mapping, so shard s's entries land back in
  // shard s of the clone: copy each source list back-to-front (least recent
  // first) and emplace_front to preserve recency order exactly.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& src = *shards_[s];
    Shard& dst = *next->shards_[s];
    std::lock_guard<std::mutex> lock(src.mu);
    for (auto it = src.lru.rbegin(); it != src.lru.rend(); ++it) {
      if (invalidated.count(it->first)) continue;
      dst.lru.emplace_front(it->first, it->second);
      dst.index.emplace(it->first, dst.lru.begin());
    }
  }
  return next;
}

wifi::RpdStatsCache::CacheStats ShardedRpdLruCache::stats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.evictions += shard->evictions;
  }
  return total;
}

std::size_t ShardedRpdLruCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace trajkit::serve
