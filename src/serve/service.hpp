// Batched verification serving layer: the long-lived process face of the
// paper's J function.
//
// A VerifierService owns (or wraps) a trained RssiDetector and turns the
// one-upload-at-a-time library call into a service: callers submit
// VerificationRequests, the dispatcher micro-batches them through the
// deterministic thread pool (common/parallel), per-cell RPD statistics are
// shared across all requests through a bounded shard-locked LRU
// (serve/rpd_lru_cache), and every request comes back as a structured
// VerdictResponse with an explicit outcome.
//
// Admission control: a full queue rejects at submit time (kRejected, the
// caller should back off), and a request whose queueing time exceeded its
// deadline is answered kTimedOut without burning detector time on it.
//
// Determinism contract (PR 1): a response's payload — verdict, probability,
// features, point scores — is a pure function of (model, upload).  Batch
// composition, arrival order, thread count and cache eviction cannot change
// it; only the timing fields and outcome of deadline-bound requests depend
// on the wall clock.  tests/determinism_test.cpp asserts byte-identical
// canonical payloads across thread counts and submission orders.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/counters.hpp"
#include "common/expected.hpp"
#include "serve/rpd_lru_cache.hpp"
#include "wifi/detector.hpp"

namespace trajkit::serve {

enum class Outcome {
  kOk,        ///< evaluated; see the report
  kRejected,  ///< refused at admission (queue full)
  kTimedOut,  ///< deadline expired while queued; not evaluated
  kError,     ///< evaluation threw (e.g. upload length mismatch); see `error`
};

const char* outcome_name(Outcome outcome);

struct VerificationRequest {
  std::uint64_t id = 0;         ///< caller-chosen; echoed in the response
  wifi::ScannedUpload upload;
  /// Queueing budget in microseconds from submission; 0 = no deadline.
  std::int64_t deadline_us = 0;
};

struct VerdictResponse {
  std::uint64_t request_id = 0;
  Outcome outcome = Outcome::kError;
  wifi::VerdictReport report;  ///< meaningful when outcome == kOk
  std::string error;           ///< meaningful when outcome == kError
  std::int64_t queue_us = 0;   ///< time spent queued (0 on the sync paths)
  std::int64_t compute_us = 0; ///< detector time

  /// Deterministic rendering of the payload; excludes the timing fields.
  std::string canonical_string() const;
};

struct VerifierServiceConfig {
  std::size_t max_batch = 16;   ///< requests dispatched per micro-batch
  std::size_t max_queue = 1024; ///< admission limit; beyond -> kRejected
  bool auto_start = true;       ///< false: queue only until start() is called
  /// Shared RPD cache injected into the detector.  use_shared_cache = false
  /// keeps whatever cache the detector already has (tests, ablations).
  bool use_shared_cache = true;
  ShardedRpdLruCache::Config cache;
};

/// Monotonically-increasing service counters plus latency quantiles.
struct ServiceCounters {
  std::uint64_t received = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t errors = 0;
  std::uint64_t batches = 0;
  wifi::RpdStatsCache::CacheStats cache;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

class VerifierService {
 public:
  /// Own the detector (the deployment shape: load once, serve forever).
  /// The detector must already be trained.
  explicit VerifierService(std::unique_ptr<wifi::RssiDetector> detector,
                           VerifierServiceConfig config = {},
                           const Clock* clock = nullptr);

  /// Wrap a caller-owned detector (embedding shape, e.g. the experiment
  /// pipeline).  The detector must outlive the service; the service still
  /// injects its shared cache into it unless use_shared_cache is false.
  explicit VerifierService(wifi::RssiDetector& detector,
                           VerifierServiceConfig config = {},
                           const Clock* clock = nullptr);

  /// Model-loading path: build a service straight from a persisted detector
  /// file, reporting failures as a string instead of throwing.
  static Expected<std::unique_ptr<VerifierService>, std::string> try_create_from_file(
      const std::string& model_path, VerifierServiceConfig config = {});

  ~VerifierService();
  VerifierService(const VerifierService&) = delete;
  VerifierService& operator=(const VerifierService&) = delete;

  /// Async path: enqueue for the dispatcher.  Admission happens here — a
  /// full queue resolves the future immediately with kRejected.
  std::future<VerdictResponse> submit(VerificationRequest request);

  /// Sync path: evaluate a whole batch on the calling thread through the
  /// thread pool, bypassing the queue (no admission, no deadlines).
  /// Responses come back in request order.
  std::vector<VerdictResponse> verify_batch(
      const std::vector<VerificationRequest>& requests);

  /// Sync single-upload convenience.
  VerdictResponse verify_now(const wifi::ScannedUpload& upload);

  void start();
  /// Drain the queue, then join the dispatcher.  Idempotent.
  void stop();
  bool running() const;

  const wifi::RssiDetector& detector() const { return *detector_; }
  /// The shared LRU, or nullptr when use_shared_cache was false.
  const ShardedRpdLruCache* shared_cache() const { return cache_.get(); }

  ServiceCounters counters() const;
  /// Counters rendered through common/table for logs and operators.
  std::string counters_table() const;

 private:
  struct Pending {
    VerificationRequest request;
    std::promise<VerdictResponse> promise;
    std::int64_t enqueue_us = 0;
  };

  VerifierService(std::unique_ptr<wifi::RssiDetector> owned,
                  wifi::RssiDetector* borrowed, VerifierServiceConfig config,
                  const Clock* clock);

  VerdictResponse evaluate(const VerificationRequest& request,
                           std::int64_t queue_us);
  void process_batch(std::vector<Pending>& batch);
  void dispatcher_loop();
  void reject_pending();

  std::unique_ptr<wifi::RssiDetector> owned_;
  wifi::RssiDetector* detector_;
  VerifierServiceConfig config_;
  const Clock* clock_;
  std::shared_ptr<ShardedRpdLruCache> cache_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  bool running_ = false;
  std::thread dispatcher_;

  std::atomic<std::uint64_t> received_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> timed_out_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> batches_{0};
  LatencyHistogram latency_;
};

}  // namespace trajkit::serve
