// Batched verification serving layer: the long-lived process face of the
// paper's J function.
//
// A VerifierService owns (or wraps) a trained RssiDetector and turns the
// one-upload-at-a-time library call into a service: callers submit
// VerificationRequests, the dispatcher micro-batches them through the
// deterministic thread pool (common/parallel), per-cell RPD statistics are
// shared across all requests through a bounded shard-locked LRU
// (serve/rpd_lru_cache), and every request comes back as a structured
// VerdictResponse with an explicit outcome.
//
// Admission control: a full queue rejects at submit time (kRejected, the
// caller should back off), and a request whose queueing time exceeded its
// deadline is answered kTimedOut without burning detector time on it.
//
// Partial failure is part of the contract, not an afterthought: the paper's
// detector leans on a crowdsourced RSSI store that is incomplete and noisy by
// assumption, so the service treats "the full pipeline is unavailable" as a
// normal operating mode.  Transient evaluation faults (FaultError — injected
// by the chaos harness or raised by flaky I/O) are retried with exponential
// backoff and deterministic jitter; persistent ones trip a circuit breaker;
// and when the detector cannot answer at all — faults exhausted, breaker
// open, or the model never loaded — the request degrades to the rule-based
// physical-plausibility checker (src/baseline) instead of being dropped:
// outcome kDegraded, with the reason recorded on the response and counted in
// the service counters.  Caller errors (malformed upload, untrained model)
// are still answered kError immediately — retrying cannot fix the input.
//
// Determinism contract (PR 1): a response's payload — verdict, probability,
// features, point scores — is a pure function of (model, upload) and, under
// an armed fault schedule, of (model, upload, fault seed).  Batch
// composition, arrival order, thread count and cache eviction cannot change
// it; only the timing fields, deadline-bound outcomes and breaker-induced
// degradations depend on the wall clock.  tests/determinism_test.cpp and
// tests/chaos_test.cpp assert byte-identical canonical payloads across
// thread counts and submission orders, faults included.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "baseline/rule_based.hpp"
#include "common/clock.hpp"
#include "common/counters.hpp"
#include "common/durable/artifact_store.hpp"
#include "common/expected.hpp"
#include "nn/classifier.hpp"
#include "nn/quant_classifier.hpp"
#include "serve/rpd_lru_cache.hpp"
#include "traj/features.hpp"
#include "wifi/detector.hpp"

namespace trajkit::wifi {
class CrowdStore;
}

namespace trajkit::serve {

/// Fault point on the dispatch path, keyed by request id with an explicit
/// retry ordinal — fail_first = N makes every request's first N attempts
/// fail, proving the retry loop recovers deterministically at attempt N.
inline constexpr const char* kFaultDispatch = "serve.dispatch";

enum class Outcome {
  kOk,        ///< evaluated; see the report
  kDegraded,  ///< detector unavailable; rule-based fallback verdict in report
  kRejected,  ///< refused at admission (queue full)
  kTimedOut,  ///< deadline expired while queued; not evaluated
  kError,     ///< evaluation threw (e.g. upload length mismatch); see `error`
};

const char* outcome_name(Outcome outcome);

struct VerificationRequest {
  std::uint64_t id = 0;         ///< caller-chosen; echoed in the response
  wifi::ScannedUpload upload;
  /// Queueing budget in microseconds from submission; 0 = no deadline.
  std::int64_t deadline_us = 0;
};

struct VerdictResponse {
  std::uint64_t request_id = 0;
  Outcome outcome = Outcome::kError;
  wifi::VerdictReport report;  ///< meaningful when outcome == kOk/kDegraded
  std::string error;           ///< meaningful when outcome == kError
  /// Motion-model sidecar verdict (MotionPolicy): probability that the
  /// claimed positions move like a genuine trajectory.  Present only on kOk
  /// responses of a motion-armed service with >= 2 uploaded positions.
  bool has_motion_p_real = false;
  double motion_p_real = 0.0;
  /// Why the request degraded (kDegraded only): the final fault message,
  /// "breaker_open", or "detector_unavailable".
  std::string degraded_reason;
  std::int64_t queue_us = 0;   ///< time spent queued (0 on the sync paths)
  std::int64_t compute_us = 0; ///< detector time, retries and backoff included

  /// Deterministic rendering of the payload; excludes the timing fields.
  std::string canonical_string() const;
};

/// Bounded retry with exponential backoff for transient (FaultError)
/// evaluation failures.  Jitter is drawn from a counter-based sub-stream of
/// (jitter_seed, request id, attempt), so backoff durations — and therefore
/// fault decisions keyed on attempt ordinals — replay identically across
/// thread counts.
struct RetryPolicy {
  std::size_t max_retries = 2;        ///< re-evaluations after the first try
  std::int64_t backoff_base_us = 50;  ///< first retry delay before jitter
  double backoff_multiplier = 2.0;    ///< delay *= multiplier per attempt
  std::int64_t backoff_cap_us = 5000; ///< upper bound on any single delay
  std::uint64_t jitter_seed = 0;      ///< sub-stream key for the jitter draw
};

/// Circuit breaker over consecutive exhausted-retry failures.  While open,
/// requests skip the detector and degrade immediately ("breaker_open"), so a
/// dead dependency sheds load instead of burning max_retries per request.
/// Note the breaker couples a request's outcome to its neighbours' timing —
/// breaker-induced degradations are excluded from the cross-thread
/// determinism contract, like deadlines (keep failure_threshold = 0 in
/// schedules that assert byte-identical payloads).
struct BreakerPolicy {
  std::size_t failure_threshold = 0;   ///< consecutive failures to open; 0 = off
  std::int64_t cooldown_us = 100000;   ///< open duration before re-probing
};

/// Graceful degradation: answer through the rule-based physical-plausibility
/// checker when the RSSI detector cannot.  The fallback sees only the
/// claimed positions (scans need the reference store that just failed), so
/// it catches crude forgeries and keeps availability; p_real is the fraction
/// of points that fired no rule.
struct FallbackPolicy {
  bool enabled = true;
  /// Transport mode whose physical limits the rule checker applies.
  Mode mode = Mode::kWalking;
  /// Sampling interval assumed between upload points, seconds.
  double interval_s = 2.0;
  /// Permit construction without a working detector (try_create_from_file on
  /// an unloadable model): every request is answered by the fallback until
  /// the process is restarted with a healthy model.
  bool allow_degraded_start = false;
};

/// Optional motion-model sidecar: arm it with a trained LSTM classifier and
/// the encoder it was trained with, and every kOk response also carries the
/// motion model's probability that the claimed positions move like a human
/// (Sec. IV-A's classifier C serving next to the RSSI detector).  The whole
/// micro-batch is evaluated through the batched kernel path in one pass;
/// because the batched forward is bit-identical per sequence regardless of
/// grouping, motion_p_real stays a pure function of (model, upload) and the
/// determinism contract above extends to it unchanged.
struct MotionPolicy {
  std::shared_ptr<const nn::LstmClassifier> model;
  std::shared_ptr<const FeatureEncoder> encoder;
  /// Quantized serving lane (nn/quant_classifier): installed only when the
  /// verdict-agreement gate passed against `model` on a calibration set.  The
  /// fp64 model stays resident as the oracle and the per-model fallback —
  /// quant==nullptr (never armed, or gate failed) serves fp64 unchanged.
  std::shared_ptr<const nn::QuantizedLstm> quant;
  /// Gate evidence for the installed quant model (pass, max logit delta,
  /// verdict checksum); meaningful only when quant != nullptr.
  nn::QuantGateReport quant_gate;
  bool armed() const { return model != nullptr && encoder != nullptr; }
  bool quant_armed() const { return armed() && quant != nullptr && quant_gate.pass; }

  /// Quantize `model`, gate it against the fp64 oracle on `calibration`, and
  /// install the quantized lane only if the gate passes (zero verdict
  /// disagreements and max |logit delta| <= bound).  On gate failure the
  /// policy is left untouched — serving falls back to fp64 — and the failing
  /// report is returned so callers can log why.
  nn::QuantGateReport arm_quantized(const std::vector<FeatureSequence>& calibration,
                                    nn::QuantMode mode = nn::QuantMode::kInt8,
                                    double logit_delta_bound = 0.05,
                                    double threshold = 0.5) {
    nn::QuantGateReport report;
    // No model or no calibration data: nothing to gate against — report a
    // (default) failing gate instead of letting quantize() throw.
    if (!model || calibration.empty()) return report;
    auto q = std::make_shared<nn::QuantizedLstm>(
        nn::QuantizedLstm::quantize(*model, calibration, mode));
    report = nn::quant_gate_check(*model, *q, calibration, logit_delta_bound, threshold);
    if (report.pass) {
      quant = std::move(q);
      quant_gate = report;
    }
    return report;
  }
};

struct VerifierServiceConfig {
  std::size_t max_batch = 16;   ///< requests dispatched per micro-batch
  std::size_t max_queue = 1024; ///< admission limit; beyond -> kRejected
  bool auto_start = true;       ///< false: queue only until start() is called
  /// Shared RPD cache injected into the detector.  use_shared_cache = false
  /// keeps whatever cache the detector already has (tests, ablations).
  bool use_shared_cache = true;
  ShardedRpdLruCache::Config cache;
  RetryPolicy retry;
  BreakerPolicy breaker;
  FallbackPolicy fallback;
  MotionPolicy motion;
};

/// Monotonically-increasing service counters plus latency quantiles.
struct ServiceCounters {
  std::uint64_t received = 0;
  std::uint64_t completed = 0;
  std::uint64_t degraded = 0;       ///< answered by the rule-based fallback
  std::uint64_t rejected = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t errors = 0;
  std::uint64_t batches = 0;
  std::uint64_t motion_quant_batches = 0;  ///< micro-batches served by the int8/int16 lane
  std::uint64_t retries = 0;        ///< re-evaluations after transient faults
  std::uint64_t breaker_opens = 0;  ///< times the circuit breaker tripped
  wifi::RpdStatsCache::CacheStats cache;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

class VerifierService {
 public:
  /// Own the detector (the deployment shape: load once, serve forever).
  /// The detector must already be trained.
  explicit VerifierService(std::unique_ptr<wifi::RssiDetector> detector,
                           VerifierServiceConfig config = {},
                           const Clock* clock = nullptr);

  /// Wrap a caller-owned detector (embedding shape, e.g. the experiment
  /// pipeline).  The detector must outlive the service; the service still
  /// injects its shared cache into it unless use_shared_cache is false.
  explicit VerifierService(wifi::RssiDetector& detector,
                           VerifierServiceConfig config = {},
                           const Clock* clock = nullptr);

  /// Model-loading path: build a service straight from a persisted detector
  /// file, reporting failures as a string instead of throwing.  When the
  /// model cannot load and fallback.allow_degraded_start is set, a
  /// detector-less service is returned instead of an error: it answers every
  /// request kDegraded through the rule-based checker.
  static Expected<std::unique_ptr<VerifierService>, std::string> try_create_from_file(
      const std::string& model_path, VerifierServiceConfig config = {});

  /// Cold-start from a crowd store (wifi/crowd_store: durable snapshot +
  /// write-ahead journal) plus a persisted detector model whose classifier,
  /// config and trained-points count are reused over the store's reference
  /// set.  This is the crash-recovery path: the store recovers from any
  /// kill point, and the resulting service reproduces bit-identical verdicts.
  /// Degraded-start semantics match try_create_from_file.
  static Expected<std::unique_ptr<VerifierService>, std::string> try_create_from_store(
      const std::string& store_dir, const std::string& model_path,
      VerifierServiceConfig config = {});

  /// Cold-start from a versioned artifact store: loads whatever epoch the
  /// store's durable CURRENT pointer names for `kind` and serves it.  The
  /// epoch-aware counterpart of try_create_from_file — restart after a crash
  /// mid-publish comes back on the last fully-published epoch.  Degraded-start
  /// semantics match try_create_from_file.
  static Expected<std::unique_ptr<VerifierService>, std::string>
  try_create_from_artifacts(const std::string& artifact_dir,
                            VerifierServiceConfig config = {},
                            const std::string& kind = "detector");

  ~VerifierService();
  VerifierService(const VerifierService&) = delete;
  VerifierService& operator=(const VerifierService&) = delete;

  /// Async path: enqueue for the dispatcher.  Admission happens here — a
  /// full queue resolves the future immediately with kRejected.
  std::future<VerdictResponse> submit(VerificationRequest request);

  /// Sync path: evaluate a whole batch on the calling thread through the
  /// thread pool, bypassing the queue (no admission, no deadlines).
  /// Responses come back in request order.
  std::vector<VerdictResponse> verify_batch(
      const std::vector<VerificationRequest>& requests);

  /// Sync single-upload convenience.
  VerdictResponse verify_now(const wifi::ScannedUpload& upload);

  void start();
  /// Drain the queue, then join the dispatcher.  Idempotent.
  void stop();
  bool running() const;

  /// False only for a degraded-start service (model never loaded).
  bool has_detector() const { return detector_snapshot() != nullptr; }
  /// Shared-ownership handle on the live detector (RCU snapshot): holders
  /// keep their epoch alive across a concurrent hot-swap.  Null on a
  /// degraded-start service.
  std::shared_ptr<const wifi::RssiDetector> detector_snapshot() const;
  /// The live detector; requires has_detector().  Prefer detector_snapshot()
  /// when a hot-swap may run concurrently — this reference does not pin the
  /// epoch it came from.
  const wifi::RssiDetector& detector() const { return *detector_snapshot(); }
  /// The shared LRU, or nullptr when use_shared_cache was false.  Like
  /// detector(), does not pin the epoch.
  const ShardedRpdLruCache* shared_cache() const;

  /// Model epoch currently serving (0 until the first publish/adopt).
  std::uint64_t epoch() const;
  /// Store points folded into the serving epoch's reference index.
  std::size_t published_points() const;

  /// Install a replacement detector as a new epoch (RCU flip: in-flight
  /// requests finish on the detector they snapshotted; new requests see the
  /// replacement).  A fresh shared RPD cache is injected unless `cache` is
  /// provided (the carry-forward path).  `published_points` records how many
  /// store points the replacement's index covers.
  void install_detector(std::shared_ptr<wifi::RssiDetector> detector,
                        std::uint64_t epoch, std::size_t published_points,
                        std::shared_ptr<ShardedRpdLruCache> cache = nullptr);

  /// Publish the store's current reference set as the next model epoch,
  /// without dropping a single in-flight request:
  ///
  ///   1. the points appended since the serving epoch determine the affected
  ///      reference points (old-index radius query at the RPD counting
  ///      radius R) — everything else's counting statistics are provably
  ///      unchanged;
  ///   2. a replacement detector is assembled over the full point set under
  ///      the serving index's pinned grid bounds (bitwise-stable iteration
  ///      order), reusing the serving classifier/config/threshold;
  ///   3. the shared RPD cache is carried forward minus the affected keys —
  ///      O(resident) pointer work instead of a cold cache;
  ///   4. when `artifacts` is given, the detector is committed there first
  ///      (crash before the CURRENT flip ⇒ restart serves the old epoch);
  ///   5. the RCU flip installs the new epoch and an "#epoch N" control
  ///      frame is journaled through `store` so WAL-shipping followers adopt
  ///      it.
  ///
  /// `exclude_quarantined` publishes the store's trusted_points() instead —
  /// the quarantine stage that holds suspected-poisoned uploaders out of the
  /// served model while review is pending.  A filtered set is not an
  /// append-only extension of the serving slice, so the cache carry-forward
  /// contract (steps 1 and 3 key the LRU on reference-point indices) does
  /// not hold: a filtered publish cold-rebuilds with a fresh cache, and so
  /// does the next publish after it (the serving slice is no longer a prefix
  /// of the store).  Unfiltered steady-state publishes are unaffected.
  ///
  /// Returns the new epoch number.
  Expected<std::uint64_t, std::string> publish_epoch(
      wifi::CrowdStore& store, durable::ArtifactStore* artifacts = nullptr,
      bool exclude_quarantined = false);

  /// True while the circuit breaker is open (requests degrade immediately).
  bool breaker_open() const;

  ServiceCounters counters() const;
  /// Counters rendered through common/table for logs and operators.
  std::string counters_table() const;

 private:
  struct Pending {
    VerificationRequest request;
    std::promise<VerdictResponse> promise;
    std::int64_t enqueue_us = 0;
  };

  VerifierService(std::unique_ptr<wifi::RssiDetector> owned,
                  wifi::RssiDetector* borrowed, VerifierServiceConfig config,
                  const Clock* clock);

  VerdictResponse evaluate(const VerificationRequest& request,
                           std::int64_t queue_us);
  /// Fill `response` with the rule-based fallback verdict (kDegraded), or
  /// kError when the fallback is disabled.
  void degrade(VerdictResponse& response, const VerificationRequest& request,
               std::string reason);
  wifi::VerdictReport fallback_report(const wifi::ScannedUpload& upload) const;
  /// Attach motion_p_real to the kOk responses of one batch (no-op unless
  /// config_.motion is armed).  uploads[i] must belong to responses[i].
  void annotate_motion(const std::vector<const wifi::ScannedUpload*>& uploads,
                       std::vector<VerdictResponse>& responses) const;
  std::int64_t backoff_delay_us(std::uint64_t request_id,
                                std::size_t attempt) const;
  void breaker_record_success();
  void breaker_record_failure();
  void process_batch(std::vector<Pending>& batch);
  void dispatcher_loop();
  void reject_pending();

  // RCU state: detector_, cache_, epoch_ and published_points_ swap together
  // under swap_mu_.  Readers take a shared_ptr snapshot once per request and
  // never block a swap; a borrowed (caller-owned) detector is held through a
  // no-op deleter.
  mutable std::mutex swap_mu_;
  std::shared_ptr<wifi::RssiDetector> detector_;
  std::shared_ptr<ShardedRpdLruCache> cache_;
  std::uint64_t epoch_ = 0;
  std::size_t published_points_ = 0;
  // True when the serving epoch was published from a filtered (quarantine-
  // excluding) point set: published_points_ then does not name a prefix of
  // the store, so the next publish must cold-rebuild.
  bool filtered_epoch_ = false;
  VerifierServiceConfig config_;
  const Clock* clock_;
  baseline::RuleBasedDetector fallback_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  bool running_ = false;
  std::thread dispatcher_;

  std::atomic<std::uint64_t> received_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> timed_out_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> batches_{0};
  // Incremented from annotate_motion (const path) — hence mutable.
  mutable std::atomic<std::uint64_t> motion_quant_batches_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> breaker_opens_{0};
  std::atomic<std::uint64_t> consecutive_failures_{0};
  std::atomic<std::int64_t> breaker_open_until_us_{0};
  LatencyHistogram latency_;
};

}  // namespace trajkit::serve
