#include "serve/service.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <unordered_set>

#include "common/fault.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "wifi/crowd_store.hpp"
#include "wifi/validate.hpp"

namespace trajkit::serve {

const char* outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::kOk: return "ok";
    case Outcome::kDegraded: return "degraded";
    case Outcome::kRejected: return "rejected";
    case Outcome::kTimedOut: return "timed_out";
    case Outcome::kError: return "error";
  }
  return "unknown";
}

std::string VerdictResponse::canonical_string() const {
  std::string out = "id=" + std::to_string(request_id) + " outcome=";
  out += outcome_name(outcome);
  if (outcome == Outcome::kOk || outcome == Outcome::kDegraded) {
    out += ' ';
    out += report.canonical_string();
  }
  if (has_motion_p_real) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), " motion_p_real=%.17g", motion_p_real);
    out += buf;
  }
  if (outcome == Outcome::kDegraded && !degraded_reason.empty()) {
    out += " reason=";
    out += degraded_reason;
  }
  if (outcome == Outcome::kError && !error.empty()) {
    out += " error=";
    out += error;
  }
  return out;
}

VerifierService::VerifierService(std::unique_ptr<wifi::RssiDetector> detector,
                                 VerifierServiceConfig config, const Clock* clock)
    : VerifierService(std::move(detector), nullptr, config, clock) {}

VerifierService::VerifierService(wifi::RssiDetector& detector,
                                 VerifierServiceConfig config, const Clock* clock)
    : VerifierService(nullptr, &detector, config, clock) {}

VerifierService::VerifierService(std::unique_ptr<wifi::RssiDetector> owned,
                                 wifi::RssiDetector* borrowed,
                                 VerifierServiceConfig config, const Clock* clock)
    : config_(config),
      clock_(clock ? clock : &steady_clock()),
      fallback_(baseline::RuleBasedDetector::for_mode(config.fallback.mode)) {
  if (owned) {
    detector_ = std::move(owned);
  } else if (borrowed) {
    // Caller-owned detector: share without owning (no-op deleter) so the RCU
    // snapshot machinery treats both ownership shapes identically.
    detector_ =
        std::shared_ptr<wifi::RssiDetector>(borrowed, [](wifi::RssiDetector*) {});
  }
  if (!detector_ &&
      !(config_.fallback.enabled && config_.fallback.allow_degraded_start)) {
    throw std::invalid_argument("VerifierService: null detector");
  }
  if (config_.max_batch == 0) {
    throw std::invalid_argument("VerifierService: max_batch must be positive");
  }
  if (config_.use_shared_cache) {
    cache_ = std::make_shared<ShardedRpdLruCache>(config_.cache);
    if (detector_) detector_->set_rpd_cache(cache_);
  }
  if (detector_) published_points_ = detector_->index().size();
  if (config_.auto_start) start();
}

std::shared_ptr<const wifi::RssiDetector> VerifierService::detector_snapshot() const {
  std::lock_guard<std::mutex> lock(swap_mu_);
  return detector_;
}

const ShardedRpdLruCache* VerifierService::shared_cache() const {
  std::lock_guard<std::mutex> lock(swap_mu_);
  return cache_.get();
}

std::uint64_t VerifierService::epoch() const {
  std::lock_guard<std::mutex> lock(swap_mu_);
  return epoch_;
}

std::size_t VerifierService::published_points() const {
  std::lock_guard<std::mutex> lock(swap_mu_);
  return published_points_;
}

void VerifierService::install_detector(std::shared_ptr<wifi::RssiDetector> detector,
                                       std::uint64_t epoch,
                                       std::size_t published_points,
                                       std::shared_ptr<ShardedRpdLruCache> cache) {
  if (!detector) {
    throw std::invalid_argument("VerifierService::install_detector: null detector");
  }
  if (!cache && config_.use_shared_cache) {
    cache = std::make_shared<ShardedRpdLruCache>(config_.cache);
  }
  if (cache) detector->set_rpd_cache(cache);
  std::lock_guard<std::mutex> lock(swap_mu_);
  detector_ = std::move(detector);
  if (cache) cache_ = std::move(cache);
  epoch_ = epoch;
  published_points_ = published_points;
}

Expected<std::uint64_t, std::string> VerifierService::publish_epoch(
    wifi::CrowdStore& store, durable::ArtifactStore* artifacts,
    bool exclude_quarantined) {
  using Result = Expected<std::uint64_t, std::string>;
  std::shared_ptr<wifi::RssiDetector> cur;
  std::shared_ptr<ShardedRpdLruCache> cur_cache;
  std::uint64_t cur_epoch = 0;
  std::size_t covered = 0;
  bool was_filtered = false;
  {
    std::lock_guard<std::mutex> lock(swap_mu_);
    cur = detector_;
    cur_cache = cache_;
    cur_epoch = epoch_;
    covered = published_points_;
    was_filtered = filtered_epoch_;
  }
  if (!cur) return Result::failure("publish_epoch: no serving detector");
  // The carry-forward machinery below keys the LRU on reference-point
  // indices of an append-only slice.  A quarantine-filtered set breaks that
  // (points drop out of the middle), and so does publishing on top of a
  // filtered epoch (covered no longer names a store prefix) — both take the
  // cold path: full rebuild, fresh cache.
  const bool cold = exclude_quarantined || was_filtered;
  std::vector<wifi::ReferencePoint> points =
      exclude_quarantined
          ? store.trusted_points()
          : std::vector<wifi::ReferencePoint>(store.points().begin(),
                                              store.points().end());
  const std::size_t folded = points.size();
  std::unordered_set<std::size_t> affected;
  if (!cold) {
    if (points.size() < covered) {
      return Result::failure("publish_epoch: store shrank below the serving epoch");
    }
    // Affected reference points: every serving-index point whose counting
    // circle C_H(R) gains one of the appended scans.  Every other point's RPD
    // statistics are integer histograms over an unchanged neighbour set, so
    // their cached values stay bitwise valid in the next epoch — that is what
    // lets the cache carry forward instead of going cold.
    const double radius = cur->confidence().rpd().params().counting_radius_m;
    for (std::size_t i = covered; i < points.size(); ++i) {
      for (const std::size_t h : cur->index().within(points[i].pos, radius)) {
        affected.insert(h);
      }
    }
  }
  // The replacement index keeps the serving epoch's grid bounds: within()
  // iteration order (and hence every float accumulation order downstream) is
  // pinned across epochs, so unaffected verdicts stay bit-identical.
  auto fresh = wifi::RssiDetector::assemble(std::move(points), cur->config(),
                                            cur->classifier(),
                                            cur->trained_points(),
                                            cur->index().bounds());
  std::uint64_t next_epoch = cur_epoch + 1;
  if (artifacts != nullptr) {
    // Commit the artifact before anything becomes visible: a crash (or
    // injected fault) before the CURRENT flip leaves this epoch an orphan and
    // a restart serves the old one.
    auto published = artifacts->publish<wifi::RssiDetector>("detector", *fresh);
    if (!published) return Result::failure("publish_epoch: " + published.error());
    next_epoch = published.value();
  }
  // Journal the epoch marker before the flip so WAL followers can never
  // observe a marker the primary did not durably record.
  auto marker = store.append_epoch_marker(next_epoch);
  if (!marker) return Result::failure("publish_epoch: " + marker.error());
  std::shared_ptr<ShardedRpdLruCache> next_cache;
  if (!cold && cur_cache) next_cache = cur_cache->carry_forward(affected);
  install_detector(std::move(fresh), next_epoch, folded, std::move(next_cache));
  {
    std::lock_guard<std::mutex> lock(swap_mu_);
    filtered_epoch_ = exclude_quarantined;
  }
  return Result(next_epoch);
}

Expected<std::unique_ptr<VerifierService>, std::string>
VerifierService::try_create_from_file(const std::string& model_path,
                                      VerifierServiceConfig config) {
  using ServiceOrError = Expected<std::unique_ptr<VerifierService>, std::string>;
  auto detector = wifi::RssiDetector::try_load_file(model_path);
  if (!detector) {
    if (config.fallback.enabled && config.fallback.allow_degraded_start) {
      // Degraded-start serving: the model is unavailable, but the service
      // still answers every request through the rule-based fallback.
      return ServiceOrError(std::unique_ptr<VerifierService>(
          new VerifierService(nullptr, nullptr, config, nullptr)));
    }
    return ServiceOrError::failure(detector.error());
  }
  return ServiceOrError(std::make_unique<VerifierService>(
      std::move(detector).value(), config));
}

Expected<std::unique_ptr<VerifierService>, std::string>
VerifierService::try_create_from_store(const std::string& store_dir,
                                       const std::string& model_path,
                                       VerifierServiceConfig config) {
  using ServiceOrError = Expected<std::unique_ptr<VerifierService>, std::string>;
  const bool degraded_ok =
      config.fallback.enabled && config.fallback.allow_degraded_start;
  auto degraded = [&] {
    return ServiceOrError(std::unique_ptr<VerifierService>(
        new VerifierService(nullptr, nullptr, config, nullptr)));
  };
  auto store = wifi::CrowdStore::open(store_dir);
  if (!store) {
    if (degraded_ok) return degraded();
    return ServiceOrError::failure(store.error());
  }
  auto model = wifi::RssiDetector::try_load_file(model_path);
  if (!model) {
    if (degraded_ok) return degraded();
    return ServiceOrError::failure(model.error());
  }
  // The model file carries the classifier + config; the crowd store supplies
  // the (recovered) reference set the index is rebuilt over.
  auto detector = wifi::RssiDetector::assemble(
      store.value()->points(), model.value()->config(),
      model.value()->classifier(), model.value()->trained_points());
  auto service =
      std::make_unique<VerifierService>(std::move(detector), config);
  // Adopt the store's recovered epoch: publishes resume after the highest
  // "#epoch N" marker the journal replayed, not from scratch.
  service->epoch_ = store.value()->observed_epoch();
  service->published_points_ = store.value()->points().size();
  return ServiceOrError(std::move(service));
}

Expected<std::unique_ptr<VerifierService>, std::string>
VerifierService::try_create_from_artifacts(const std::string& artifact_dir,
                                           VerifierServiceConfig config,
                                           const std::string& kind) {
  using ServiceOrError = Expected<std::unique_ptr<VerifierService>, std::string>;
  const bool degraded_ok =
      config.fallback.enabled && config.fallback.allow_degraded_start;
  auto degraded = [&] {
    return ServiceOrError(std::unique_ptr<VerifierService>(
        new VerifierService(nullptr, nullptr, config, nullptr)));
  };
  auto artifacts = durable::ArtifactStore::open_dir(artifact_dir);
  if (!artifacts) {
    if (degraded_ok) return degraded();
    return ServiceOrError::failure(artifacts.error());
  }
  const std::uint64_t live = artifacts.value()->current_epoch(kind);
  if (live == 0) {
    if (degraded_ok) return degraded();
    return ServiceOrError::failure("artifact store has no published '" + kind +
                                   "'");
  }
  auto detector = artifacts.value()->open<wifi::RssiDetector>(kind);
  if (!detector) {
    if (degraded_ok) return degraded();
    return ServiceOrError::failure(detector.error());
  }
  auto service = std::make_unique<VerifierService>(std::move(detector).value(),
                                                   config);
  service->epoch_ = live;
  return ServiceOrError(std::move(service));
}

VerifierService::~VerifierService() {
  stop();
  reject_pending();  // auto_start = false and never started: fail cleanly
}

void VerifierService::start() {
  std::unique_lock<std::mutex> lock(mu_);
  if (running_) return;
  stopping_ = false;
  running_ = true;
  lock.unlock();
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

void VerifierService::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  dispatcher_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

bool VerifierService::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void VerifierService::reject_pending() {
  std::deque<Pending> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    orphaned.swap(queue_);
  }
  for (auto& pending : orphaned) {
    VerdictResponse response;
    response.request_id = pending.request.id;
    response.outcome = Outcome::kRejected;
    rejected_.fetch_add(1, std::memory_order_relaxed);
    pending.promise.set_value(std::move(response));
  }
}

std::future<VerdictResponse> VerifierService::submit(VerificationRequest request) {
  received_.fetch_add(1, std::memory_order_relaxed);
  std::promise<VerdictResponse> promise;
  auto future = promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.size() >= config_.max_queue) {
      VerdictResponse response;
      response.request_id = request.id;
      response.outcome = Outcome::kRejected;
      rejected_.fetch_add(1, std::memory_order_relaxed);
      promise.set_value(std::move(response));
      return future;
    }
    queue_.push_back({std::move(request), std::move(promise), clock_->now_us()});
  }
  work_cv_.notify_one();
  return future;
}

wifi::VerdictReport VerifierService::fallback_report(
    const wifi::ScannedUpload& upload) const {
  wifi::VerdictReport report;
  report.threshold = 0.5;
  const auto violations =
      fallback_.check_points(upload.positions, config_.fallback.interval_s);
  // Per-point plausibility: 1 until a rule fires at that point.  Mirrors the
  // detector's point_scores semantics (higher = better supported) so callers
  // can localise the offending stretch on the degraded path too.
  report.point_scores.assign(upload.positions.size(), 1.0);
  std::size_t flagged = 0;
  for (const auto& v : violations) {
    if (v.point_index < report.point_scores.size() &&
        report.point_scores[v.point_index] > 0.0) {
      report.point_scores[v.point_index] = 0.0;
      ++flagged;
    }
  }
  report.p_real = upload.positions.empty()
                      ? 0.0
                      : 1.0 - static_cast<double>(flagged) /
                                  static_cast<double>(upload.positions.size());
  if (!violations.empty() && flagged == 0) report.p_real = 0.0;  // e.g. too_short
  report.verdict = violations.empty() ? 1 : 0;
  return report;
}

std::int64_t VerifierService::backoff_delay_us(std::uint64_t request_id,
                                               std::size_t attempt) const {
  double delay = static_cast<double>(config_.retry.backoff_base_us);
  for (std::size_t i = 0; i < attempt; ++i) delay *= config_.retry.backoff_multiplier;
  // Deterministic jitter in [0.5, 1.5): a pure function of (seed, request,
  // attempt), so retry timing never depends on scheduling.
  Rng jitter = Rng::substream(config_.retry.jitter_seed ^ 0x626b6f66ull,
                              request_id * 31 + attempt);
  delay *= jitter.uniform(0.5, 1.5);
  const auto cap = static_cast<double>(config_.retry.backoff_cap_us);
  if (delay > cap) delay = cap;
  return static_cast<std::int64_t>(delay);
}

bool VerifierService::breaker_open() const {
  if (config_.breaker.failure_threshold == 0) return false;
  return clock_->now_us() <
         breaker_open_until_us_.load(std::memory_order_relaxed);
}

void VerifierService::breaker_record_success() {
  consecutive_failures_.store(0, std::memory_order_relaxed);
}

void VerifierService::breaker_record_failure() {
  if (config_.breaker.failure_threshold == 0) return;
  const std::uint64_t n =
      consecutive_failures_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n >= config_.breaker.failure_threshold) {
    breaker_open_until_us_.store(clock_->now_us() + config_.breaker.cooldown_us,
                                 std::memory_order_relaxed);
    breaker_opens_.fetch_add(1, std::memory_order_relaxed);
    consecutive_failures_.store(0, std::memory_order_relaxed);
  }
}

void VerifierService::degrade(VerdictResponse& response,
                              const VerificationRequest& request,
                              std::string reason) {
  if (!config_.fallback.enabled) {
    response.outcome = Outcome::kError;
    response.error = std::move(reason);
    errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  response.outcome = Outcome::kDegraded;
  response.degraded_reason = std::move(reason);
  response.report = fallback_report(request.upload);
  degraded_.fetch_add(1, std::memory_order_relaxed);
}

VerdictResponse VerifierService::evaluate(const VerificationRequest& request,
                                          std::int64_t queue_us) {
  VerdictResponse response;
  response.request_id = request.id;
  response.queue_us = queue_us;
  if (request.deadline_us > 0 && queue_us > request.deadline_us) {
    response.outcome = Outcome::kTimedOut;
    timed_out_.fetch_add(1, std::memory_order_relaxed);
    return response;
  }
  const std::int64_t t0 = clock_->now_us();
  // Uploads cross the trust boundary here: reject malformed input (NaN/Inf
  // coordinates, absurd RSSIs, oversized AP lists) before any pipeline —
  // detector or fallback — sees it.  Not retryable, so kError.
  if (auto valid = wifi::validate_upload(request.upload); !valid) {
    response.outcome = Outcome::kError;
    response.error = valid.error();
    errors_.fetch_add(1, std::memory_order_relaxed);
    response.compute_us = clock_->now_us() - t0;
    latency_.add_us(response.queue_us + response.compute_us);
    return response;
  }
  // One RCU snapshot per request: a concurrent hot-swap cannot change (or
  // destroy) the model mid-request — every attempt of this request, retries
  // included, evaluates on the epoch it started on.
  const std::shared_ptr<const wifi::RssiDetector> detector = detector_snapshot();
  if (!detector) {
    degrade(response, request, "detector_unavailable");
  } else if (breaker_open()) {
    degrade(response, request, "breaker_open");
  } else {
    for (std::size_t attempt = 0;; ++attempt) {
      try {
        global_faults().check(kFaultDispatch, request.id, attempt);
        response.report = detector->analyze(request.upload);
        response.outcome = Outcome::kOk;
        completed_.fetch_add(1, std::memory_order_relaxed);
        breaker_record_success();
        break;
      } catch (const FaultError& e) {
        // Transient: injected faults and flaky-dependency errors.  Retry with
        // backoff up to the policy bound, then degrade.
        if (attempt < config_.retry.max_retries) {
          retries_.fetch_add(1, std::memory_order_relaxed);
          clock_->sleep_us(backoff_delay_us(request.id, attempt));
          continue;
        }
        breaker_record_failure();
        degrade(response, request, e.what());
        break;
      } catch (const std::exception& e) {
        // Caller error (length mismatch, untrained model): no retry can fix
        // the input, and falling back would mask a malformed request.
        response.outcome = Outcome::kError;
        response.error = e.what();
        errors_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
  }
  response.compute_us = clock_->now_us() - t0;
  latency_.add_us(response.queue_us + response.compute_us);
  return response;
}

void VerifierService::annotate_motion(
    const std::vector<const wifi::ScannedUpload*>& uploads,
    std::vector<VerdictResponse>& responses) const {
  const MotionPolicy& policy = config_.motion;
  if (!policy.armed()) return;
  std::vector<std::size_t> ok_idx;
  std::vector<FeatureSequence> feats;
  for (std::size_t i = 0; i < responses.size(); ++i) {
    if (responses[i].outcome != Outcome::kOk) continue;
    if (uploads[i]->positions.size() < 2) continue;  // encoder needs one step
    ok_idx.push_back(i);
    feats.push_back(policy.encoder->encode(uploads[i]->positions));
  }
  if (ok_idx.empty()) return;
  // One batched-kernel pass over the whole micro-batch; per-sequence bits do
  // not depend on the grouping, so batch composition stays out of the payload.
  // When the gated quantized lane is armed it takes the whole batch; the fp64
  // path below is both the default and the per-model fallback.
  std::vector<double> probs;
  if (policy.quant_armed()) {
    probs = policy.quant->predict_proba_batch(feats);
    motion_quant_batches_.fetch_add(1, std::memory_order_relaxed);
  } else {
    probs = policy.model->predict_proba_batch(feats);
  }
  for (std::size_t k = 0; k < ok_idx.size(); ++k) {
    responses[ok_idx[k]].motion_p_real = probs[k];
    responses[ok_idx[k]].has_motion_p_real = true;
  }
}

void VerifierService::process_batch(std::vector<Pending>& batch) {
  const std::int64_t dispatch_us = clock_->now_us();
  std::vector<VerdictResponse> responses(batch.size());
  // Per-request fan-out through the deterministic pool; the per-point
  // parallelism inside analyze() serialises automatically (nested region).
  parallel_for(0, batch.size(), 1, [&](std::size_t i) {
    responses[i] = evaluate(batch[i].request, dispatch_us - batch[i].enqueue_us);
  });
  {
    std::vector<const wifi::ScannedUpload*> uploads(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      uploads[i] = &batch[i].request.upload;
    }
    annotate_motion(uploads, responses);
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i].promise.set_value(std::move(responses[i]));
  }
}

void VerifierService::dispatcher_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      const std::size_t n = std::min(queue_.size(), config_.max_batch);
      batch.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    process_batch(batch);
  }
}

std::vector<VerdictResponse> VerifierService::verify_batch(
    const std::vector<VerificationRequest>& requests) {
  received_.fetch_add(requests.size(), std::memory_order_relaxed);
  std::vector<VerdictResponse> responses(requests.size());
  parallel_for(0, requests.size(), 1, [&](std::size_t i) {
    responses[i] = evaluate(requests[i], 0);
  });
  {
    std::vector<const wifi::ScannedUpload*> uploads(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      uploads[i] = &requests[i].upload;
    }
    annotate_motion(uploads, responses);
  }
  if (!requests.empty()) batches_.fetch_add(1, std::memory_order_relaxed);
  return responses;
}

VerdictResponse VerifierService::verify_now(const wifi::ScannedUpload& upload) {
  received_.fetch_add(1, std::memory_order_relaxed);
  std::vector<VerdictResponse> responses(1);
  responses[0] = evaluate(VerificationRequest{0, upload, 0}, 0);
  annotate_motion({&upload}, responses);
  return std::move(responses[0]);
}

ServiceCounters VerifierService::counters() const {
  ServiceCounters c;
  c.received = received_.load(std::memory_order_relaxed);
  c.completed = completed_.load(std::memory_order_relaxed);
  c.degraded = degraded_.load(std::memory_order_relaxed);
  c.rejected = rejected_.load(std::memory_order_relaxed);
  c.timed_out = timed_out_.load(std::memory_order_relaxed);
  c.errors = errors_.load(std::memory_order_relaxed);
  c.batches = batches_.load(std::memory_order_relaxed);
  c.motion_quant_batches = motion_quant_batches_.load(std::memory_order_relaxed);
  c.retries = retries_.load(std::memory_order_relaxed);
  c.breaker_opens = breaker_opens_.load(std::memory_order_relaxed);
  // Always read through the detector: correct whether the shared LRU or the
  // detector's own dense cache is in place.  A degraded-start service has no
  // detector; fall back to the (idle) shared cache when present.  Snapshot
  // both under the swap lock so a concurrent hot-swap cannot free either
  // mid-read.
  std::shared_ptr<const wifi::RssiDetector> detector;
  std::shared_ptr<ShardedRpdLruCache> cache;
  {
    std::lock_guard<std::mutex> lock(swap_mu_);
    detector = detector_;
    cache = cache_;
  }
  if (detector) {
    c.cache = detector->confidence().rpd().cache().stats();
  } else if (cache) {
    c.cache = cache->stats();
  }
  c.p50_us = latency_.p50_us();
  c.p95_us = latency_.p95_us();
  c.p99_us = latency_.p99_us();
  return c;
}

std::string VerifierService::counters_table() const {
  const ServiceCounters c = counters();
  TextTable table({"metric", "value"});
  table.add_row({"requests received", std::to_string(c.received)});
  table.add_row({"completed", std::to_string(c.completed)});
  table.add_row({"degraded (fallback)", std::to_string(c.degraded)});
  table.add_row({"rejected (admission)", std::to_string(c.rejected)});
  table.add_row({"timed out", std::to_string(c.timed_out)});
  table.add_row({"errors", std::to_string(c.errors)});
  table.add_row({"micro-batches", std::to_string(c.batches)});
  table.add_row({"motion quant batches", std::to_string(c.motion_quant_batches)});
  table.add_row({"retries", std::to_string(c.retries)});
  table.add_row({"breaker opens", std::to_string(c.breaker_opens)});
  table.add_row({"rpd cache hits", std::to_string(c.cache.hits)});
  table.add_row({"rpd cache misses", std::to_string(c.cache.misses)});
  table.add_row({"rpd cache evictions", std::to_string(c.cache.evictions)});
  table.add_row({"rpd cache hit rate", TextTable::num(c.cache.hit_rate(), 4)});
  table.add_row({"latency p50 (us)", TextTable::num(c.p50_us, 1)});
  table.add_row({"latency p95 (us)", TextTable::num(c.p95_us, 1)});
  table.add_row({"latency p99 (us)", TextTable::num(c.p99_us, 1)});
  return table.to_string();
}

}  // namespace trajkit::serve
