// One geo-shard of the city-scale verification plane.
//
// The ShardRouter (serve/shard_router) partitions the crowdsourced reference
// world by map tile; each ShardService owns the slice of reference points
// whose tiles (plus a halo) hash to it, an RPD LRU bounded to that slice, and
// optionally a durable CrowdStore for the shard's ingestion stream.  The
// slice detector is built under the *global* reference grid geometry
// (ReferenceIndex::natural_bounds of the unsharded set), which is what makes
// per-segment Eq. 8 features bitwise-equal to the single-shard oracle — see
// shard_router.hpp for the full equivalence argument.
//
// Replication: a leader shard ships every accepted write-ahead frame
// (seq + CrowdStore point encoding) to its attached ShardReplica followers
// and acknowledges the upload only after each follower has durably applied
// it.  Frames are applied through the journal's seq discipline — a stale seq
// is skipped (idempotent redelivery), a gapped seq is refused — so a
// follower can also cold-start from a copy of the leader's snapshot plus a
// read-only scan of its journal tail (durable::Journal::read_records) and
// converge on exactly the acknowledged prefix.  After a leader kill the
// promoted follower is just a CrowdStore directory: VerifierService::
// try_create_from_store (or a fresh ShardService) serves from it and
// reproduces bit-identical verdicts, which tests/shard_test.cpp proves by
// crashing the leader at every shipping fault point.
//
// Threading: segment evaluation is synchronous by default (the router's
// calling thread fans out through the deterministic pool).  start() arms an
// optional dedicated worker thread per shard — the scale-out serving shape
// the bench measures — fed through submit_segment().  Construction never
// spawns threads, so fork-based crash harnesses can build shards in a child.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/expected.hpp"
#include "gbt/booster.hpp"
#include "serve/rpd_lru_cache.hpp"
#include "wifi/crowd_store.hpp"
#include "wifi/detector.hpp"

namespace trajkit::serve {

/// Fault/crash points on the replication shipping path, keyed by the frame
/// seq, in execution order.  kFaultShipFrame fires after the leader's durable
/// append but before the follower sees the frame (a crash there loses the
/// in-flight frame — safe, the upload was never acknowledged);
/// kFaultShipApplied fires after the follower durably applied it but before
/// the acknowledgement (a crash there leaves an unacked-but-replicated frame
/// — the at-least-once shape seq-skip redelivery absorbs).
inline constexpr const char* kFaultShipFrame = "shard.ship_frame";
inline constexpr const char* kFaultShipApplied = "shard.ship_applied";

/// Every shipping fault point, for harnesses that walk the failover matrix.
inline constexpr const char* kShipFaultPoints[] = {kFaultShipFrame,
                                                   kFaultShipApplied};

/// Completion latch for the segment tasks of one routed request: the router
/// arms it with the segment count, each shard worker reports in, and the
/// router blocks until the last segment lands (collecting the first error).
class SegmentBarrier {
 public:
  explicit SegmentBarrier(std::size_t count);

  /// Report one segment done; empty `error` means success.
  void finish(std::string error);
  /// Block until every segment reported.
  void wait();
  /// First error reported, empty when all segments succeeded (valid after
  /// wait()).
  const std::string& first_error() const { return error_; }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t remaining_;
  std::string error_;
};

/// How a leader reaches one follower.  ShardReplica implements it in-process
/// (the PR 6 shape); serve/net_shard's RemoteFollower implements it over a
/// net::Transport with deadlines, bounded retry and gap backfill.  Either
/// way the contract is the same: apply_frame returns only after the frame is
/// durable on the follower (or describes why it is not), and both calls are
/// fenced by `term` — a deposed leader's traffic is refused, never applied.
class FollowerLink {
 public:
  virtual ~FollowerLink() = default;

  /// Durably apply one seq-stamped frame under the leader's term.  True =
  /// appended, false = stale seq (idempotent redelivery).
  virtual Expected<bool, std::string> apply_frame(std::uint64_t seq,
                                                  const std::string& payload,
                                                  wifi::UploaderId uploader,
                                                  std::uint64_t term) = 0;

  /// Lease renewal: deliver (term, leader_next_seq) so the follower can
  /// refresh its lease clock and spot its own replication lag.  Returns the
  /// follower's next expected seq.
  virtual Expected<std::uint64_t, std::string> heartbeat(
      std::uint64_t term, std::uint64_t leader_next_seq) = 0;
};

/// Follower end of shard replication: a durable CrowdStore that only accepts
/// seq-stamped frames shipped from its leader.
///
/// Lease + fencing: the replica tracks the highest leader term it has seen
/// (frames and heartbeats both carry one) and refuses anything from an older
/// term — after a partition heals, a deposed leader cannot overwrite what
/// the promoted one replicated (split-brain fencing).  leader_alive() turns
/// heartbeat receipt into failure detection: a follower whose lease lapsed
/// may promote() (bumping the term) without the fork+kill-only path PR 6
/// needed.  The clock is injectable so lease tests advance time manually.
class ShardReplica : public FollowerLink {
 public:
  /// Open (creating if needed) a follower store rooted at `dir`.
  static Expected<std::unique_ptr<ShardReplica>, std::string> open(
      const std::string& dir, bool sync_each_append = true);

  /// Cold-start a follower from a running or dead leader's on-disk state:
  /// atomically copy the leader snapshot (if any), then replay the leader's
  /// journal tail read-only through apply_frame — stale records skip, so
  /// rerunning after a partial bootstrap converges instead of duplicating.
  static Expected<std::unique_ptr<ShardReplica>, std::string> bootstrap(
      const std::string& leader_dir, const std::string& dir,
      bool sync_each_append = true);

  /// Durably apply one shipped frame.  Returns true when the frame was
  /// appended, false when `seq` is stale (already applied — idempotent
  /// redelivery); a gap (`seq` beyond the next expected) is an error, the
  /// follower must re-bootstrap rather than silently lose frames.  Control
  /// frames ('#' payloads — epoch markers, quarantine reviews) re-journal
  /// verbatim through the follower store's append_control, so followers
  /// learn about published epochs and review actions from the same WAL
  /// shipping that carries the points.  `uploader` is the frame's provenance
  /// (v2 journal frames); the follower re-journals it unchanged, so a
  /// promoted follower scores and quarantines exactly like its leader.
  /// `term` below the highest term seen is refused ("fenced").  Safe to call
  /// from concurrent transport threads (one frame applies at a time).
  Expected<bool, std::string> apply_frame(
      std::uint64_t seq, const std::string& payload,
      wifi::UploaderId uploader = wifi::kAnonymousUploader,
      std::uint64_t term = 0) override;

  /// Record a leader heartbeat: fences stale terms, refreshes the lease
  /// clock, remembers the leader's next seq (the follower's gap detector).
  Expected<std::uint64_t, std::string> heartbeat(
      std::uint64_t term, std::uint64_t leader_next_seq) override;

  /// Lease check: a heartbeat arrived within the last `lease_us`.  False
  /// before the first heartbeat.
  bool leader_alive(std::int64_t lease_us) const;
  /// Bump past every term seen and return the new term — the replica is now
  /// fenced against its old leader.  (In-memory: a real multi-node election
  /// would journal the vote; here promotion is the test- and operator-driven
  /// takeover path.)
  std::uint64_t promote();
  /// Highest leader term observed (frames + heartbeats).
  std::uint64_t term() const { return term_seen_.load(); }
  /// Leader's next seq from the last heartbeat (0 before the first): when it
  /// runs ahead of next_seq(), this follower has a gap to repair.
  std::uint64_t leader_next_seen() const { return leader_next_seen_.load(); }

  /// Substitute a manual clock for lease tests; must outlive the replica.
  void set_clock(const Clock* clock) { clock_ = clock; }

  /// Seq of the next frame this follower expects.
  std::uint64_t next_seq() const { return store_->next_seq(); }
  const wifi::CrowdStore& store() const { return *store_; }
  const std::string& dir() const { return dir_; }

 private:
  ShardReplica(std::string dir, std::unique_ptr<wifi::CrowdStore> store)
      : dir_(std::move(dir)), store_(std::move(store)) {}

  std::string dir_;
  std::unique_ptr<wifi::CrowdStore> store_;
  /// Serializes frame application across transport threads.
  std::mutex apply_mu_;
  const Clock* clock_ = &steady_clock();
  std::atomic<std::uint64_t> term_seen_{0};
  std::atomic<std::uint64_t> leader_next_seen_{0};
  std::atomic<std::int64_t> last_heartbeat_us_{-1};
};

/// required_follower_acks sentinel: every attached follower must ack.
inline constexpr std::size_t kAllFollowers = static_cast<std::size_t>(-1);

struct ShardServiceConfig {
  /// Per-shard RPD LRU slice (capacity bounds residency per shard, so a
  /// router over N shards holds at most N * capacity cached stats).
  ShardedRpdLruCache::Config cache;
  /// Followers that must durably hold a frame before ingest acknowledges it.
  /// kAllFollowers (default) preserves the PR 6 contract.  A smaller quorum
  /// keeps ingestion available while a follower is partitioned — the lagging
  /// follower develops a WAL gap and converges later through gap repair
  /// (serve/net_shard), never by silently skipping frames.
  std::size_t required_follower_acks = kAllFollowers;
};

class ShardService {
 public:
  /// A segment of a routed trajectory to evaluate: points [begin, end) of
  /// `upload`, with the Eq. 8 feature slots and per-point scores written to
  /// caller-provided storage (`features` holds 2 * top_k * (end - begin)
  /// doubles, `scores` holds end - begin).
  struct SegmentTask {
    const wifi::ScannedUpload* upload = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
    double* features = nullptr;
    double* scores = nullptr;
    SegmentBarrier* barrier = nullptr;
  };

  /// Verification shard over a pre-sliced reference set.  `index_bounds`
  /// must be the global set's grid extent (oracle index().bounds()) for the
  /// bitwise-equivalence contract to hold.  Never spawns threads.
  ShardService(std::size_t shard_id, std::vector<wifi::ReferencePoint> slice,
               const wifi::RssiDetectorConfig& config,
               gbt::GbtClassifier classifier, std::size_t trained_points,
               const BoundingBox& index_bounds, ShardServiceConfig cfg = {});

  /// Ingestion-only leader shard: owns the durable CrowdStore at `dir`, no
  /// detector (verification capacity comes from promotion / reassembly).
  static Expected<std::unique_ptr<ShardService>, std::string> open_leader(
      std::size_t shard_id, const std::string& dir, bool sync_each_append = true,
      ShardServiceConfig cfg = {});

  ~ShardService();
  ShardService(const ShardService&) = delete;
  ShardService& operator=(const ShardService&) = delete;

  std::size_t shard_id() const { return shard_id_; }
  bool has_detector() const { return detector_snapshot() != nullptr; }
  /// Shared-ownership handle on the shard's live detector (RCU snapshot):
  /// holders keep their epoch alive across a concurrent hot_swap.
  std::shared_ptr<const wifi::RssiDetector> detector_snapshot() const;
  /// The live detector; requires has_detector().  Does not pin the epoch —
  /// prefer detector_snapshot() when a hot-swap may run concurrently.
  const wifi::RssiDetector& detector() const { return *detector_snapshot(); }
  /// The shard's bounded RPD LRU (null for an ingestion-only shard).  Does
  /// not pin the epoch.
  const ShardedRpdLruCache* cache() const;
  /// The shard's durable store (null for a pure verification slice).
  const wifi::CrowdStore* store() const { return store_.get(); }
  /// Model epoch this shard currently serves (0 until a swap/adopt).
  std::uint64_t epoch() const;

  // -- Ingestion + replication (requires a store) ---------------------------

  /// Attach a follower link (in-process ShardReplica or a net_shard
  /// RemoteFollower); not owned, must outlive the shard.  Every subsequent
  /// ingest is acknowledged only after the configured quorum of followers
  /// durably applied it.
  void attach_follower(FollowerLink* follower);

  /// Validate + leader-durable append + ship to every follower; returns the
  /// acknowledged seq.  The returned seq is the durability promise: a
  /// crash anywhere inside — leader WAL, shipping, follower WAL — can only
  /// lose frames that were never returned.  `uploader` stamps the frame's
  /// provenance end to end (leader WAL, wire, follower WALs).  With the
  /// default all-follower quorum any follower failure fails the ingest; a
  /// smaller quorum tolerates partitioned followers (they fall behind and
  /// gap-repair later).
  Expected<std::uint64_t, std::string> ingest(
      const wifi::ReferencePoint& point,
      wifi::UploaderId uploader = wifi::kAnonymousUploader);

  /// Renew every follower's leader lease (term + leader next seq).  Returns
  /// the number of followers that answered; shipping failures are recorded
  /// in follower_failures().
  std::size_t send_heartbeats();

  /// The term this leader stamps on frames and heartbeats.  Raise it when a
  /// shard resumes leadership after a takeover so the old leader is fenced.
  std::uint64_t term() const { return term_; }
  void set_term(std::uint64_t term) { term_ = term; }

  std::size_t follower_count() const { return followers_.size(); }
  /// Ship/heartbeat failures per attached follower (index = attach order).
  const std::vector<std::uint64_t>& follower_failures() const {
    return follower_failures_;
  }
  /// Last failure message per follower ("" when it never failed).
  const std::vector<std::string>& follower_errors() const {
    return follower_errors_;
  }

  /// Fold the leader store's journal into its snapshot (follower bootstraps
  /// read both, so compaction is transparent to replication).
  Expected<bool, std::string> compact();

  /// Frames acknowledged through ingest() so far.
  std::uint64_t acked_frames() const { return acked_; }

  /// Journal + ship an epoch control frame ("#epoch N") exactly like a point
  /// frame: leader-durable first, then applied on every follower before the
  /// call returns.  The primary's publish path calls this after committing
  /// the epoch's artifact.
  Expected<std::uint64_t, std::string> ship_epoch_marker(std::uint64_t epoch);

  /// Journal + ship a motion-model epoch marker ("#motion_epoch N"): the
  /// quantized motion classifier was published under ArtifactStore epoch N.
  /// Followers observe it through the same WAL shipping as point frames and
  /// load the artifact from their own store at that epoch.
  Expected<std::uint64_t, std::string> ship_motion_marker(std::uint64_t epoch);

  /// Journal + ship any '#' control frame (epoch markers, "#quarantine U",
  /// "#clear U" review actions) with the same leader-durable-then-followers
  /// discipline and fault points as point frames, so quarantine state stays
  /// converged across the replica set.
  Expected<std::uint64_t, std::string> ship_control(const std::string& payload);

  // -- Epoch hot-swap -------------------------------------------------------

  /// Replace the verification slice as a new epoch without dropping in-flight
  /// segments (RCU flip; requires an existing detector).  `slice` must be the
  /// previous slice plus appended points (append-only growth, same order) —
  /// the appended tail determines the affected reference points, and the
  /// shard's RPD LRU carries forward minus exactly those keys.  The index
  /// keeps the pinned global grid bounds, so unaffected segment features stay
  /// bit-identical to the previous epoch.
  Expected<std::uint64_t, std::string> hot_swap(
      std::vector<wifi::ReferencePoint> slice, std::uint64_t epoch);

  /// Arm verification on a store-backed shard (the promoted-follower shape):
  /// assemble a detector over the store's recovered points under the given
  /// classifier/config and `index_bounds`, and adopt the store's observed
  /// epoch.  Requires a store and no existing detector.
  Expected<bool, std::string> arm_verification(
      const wifi::RssiDetectorConfig& config, gbt::GbtClassifier classifier,
      std::size_t trained_points, const BoundingBox& index_bounds,
      ShardedRpdLruCache::Config cache_cfg = {});

  /// Follower epoch adoption: after WAL frames (points + an "#epoch N"
  /// marker) landed in the store, rebuild the detector over the store's
  /// current points via the hot-swap path and serve the marker's epoch.
  /// `epoch` = 0 adopts store()->observed_epoch().  Requires a store and an
  /// armed detector.
  Expected<std::uint64_t, std::string> refresh_from_store(std::uint64_t epoch = 0);

  // -- Segment evaluation (requires a detector) -----------------------------

  /// Evaluate one segment on the calling thread (the router's synchronous
  /// fan-out path; also the worker's inner call).
  void evaluate_segment(const wifi::ScannedUpload& upload, std::size_t begin,
                        std::size_t end, double* features, double* scores) const;

  /// Queue a segment for the dedicated worker (requires start()).  The task's
  /// barrier is signalled when the segment finishes or fails.
  void submit_segment(const SegmentTask& task);

  /// Start / join the dedicated worker thread (idempotent).
  void start();
  void stop();
  bool running() const;

  /// Segments this shard evaluated (either path).
  std::uint64_t segments_evaluated() const { return segments_.load(); }

 private:
  ShardService(std::size_t shard_id, std::unique_ptr<wifi::CrowdStore> store,
               ShardServiceConfig cfg);

  void worker_loop();
  /// Shared shipping discipline for point and control frames: fault points,
  /// per-follower failure accounting, quorum check, acked_ bump.
  Expected<std::uint64_t, std::string> ship_to_followers(
      std::uint64_t seq, const std::string& payload, wifi::UploaderId uploader);
  std::size_t required_acks() const;

  std::size_t shard_id_ = 0;
  // RCU state: detector_, cache_ and epoch_ swap together under swap_mu_;
  // segment evaluation snapshots once per segment and never blocks a swap.
  mutable std::mutex swap_mu_;
  std::shared_ptr<wifi::RssiDetector> detector_;
  std::shared_ptr<ShardedRpdLruCache> cache_;
  std::uint64_t epoch_ = 0;
  // Assembly recipe of the serving detector, kept so hot_swap/refresh can
  // rebuild the slice under the same classifier and pinned grid bounds.
  wifi::RssiDetectorConfig det_config_;
  gbt::GbtClassifier classifier_;
  std::size_t trained_points_ = 0;
  BoundingBox index_bounds_;
  ShardedRpdLruCache::Config cache_cfg_;
  std::unique_ptr<wifi::CrowdStore> store_;
  std::vector<FollowerLink*> followers_;
  std::vector<std::uint64_t> follower_failures_;
  std::vector<std::string> follower_errors_;
  std::size_t required_follower_acks_ = kAllFollowers;
  std::uint64_t term_ = 0;
  std::uint64_t acked_ = 0;

  mutable std::atomic<std::uint64_t> segments_{0};

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<SegmentTask> queue_;
  bool stopping_ = false;
  bool running_ = false;
  std::thread worker_;
};

}  // namespace trajkit::serve
