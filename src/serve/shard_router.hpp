// Geo-sharded trajectory verification: consistent hashing over map tiles,
// segment fan-out, bitwise-oracle merge.
//
// The single-process serving layer (serve/service) tops out at one machine's
// reference index; the ROADMAP north-star is city scale.  This router
// partitions the crowdsourced reference world by map tile (geo/TileId):
// every tile hashes onto a vnode ring (ConsistentHashRing), each shard owns
// the reference points of its tiles *plus a halo*, and an incoming
// trajectory is split at shard boundaries into contiguous segments that fan
// out to the owning ShardServices — synchronously through the deterministic
// thread pool, or through dedicated per-shard workers when start_workers is
// set (the scale-out shape bench/bench_shard.cpp measures).
//
// The equivalence contract — the whole point of the design — is that the
// merged verdict is *bitwise identical* to the unsharded oracle's:
//
//   * Eq. 7 confidences accumulate over the reference points that
//     ReferenceIndex::within() returns, in grid order (cells row-major over
//     the index bounds, insertion order within a cell).  Each shard indexes
//     its slice under the oracle's global grid geometry (index().bounds())
//     and slices preserve global point order, so a slice query visits the
//     same references in the same order — same floats, bit for bit.
//   * A slice query must also *find* the same references.  A segment point
//     needs every reference within r (reference_radius_m), and each such
//     reference's RPD statistics count neighbours within R
//     (counting_radius_m); so a shard's slice includes every point within
//     r + R (the halo) of any tile it owns.  Over-inclusion is harmless —
//     queries are distance-filtered — so the halo uses the covering square.
//   * Per-point features land in disjoint slots of one merged Eq. 8 vector
//     (2 * top_k doubles per point, point order), and the classifier tail
//     (RssiDetector::classify_features) runs once on the merged vector —
//     the identical input the oracle's analyze() builds.
//
// tests/shard_test.cpp holds the property suite: random and adversarially
// boundary-pinned trajectories across shard counts {1, 2, 4, 8} and thread
// counts {1, 4}, canonical verdict payloads compared byte-for-byte against
// the single-shard oracle.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/counters.hpp"
#include "geo/geo.hpp"
#include "serve/service.hpp"
#include "serve/shard_service.hpp"

namespace trajkit::serve {

/// How the router evaluates one segment on a shard that is not (only) local:
/// serve/net_shard's RemoteSegmentClient implements this over a transport
/// with deadlines, bounded retry and hedged fan-out.  evaluate() must either
/// fill the slots bitwise-identically to the local path or throw — the
/// router then falls back to its resident slice and counts the verdict
/// degraded (degraded by *transport*, not by content: the fallback is the
/// same bitwise-correct evaluation, just served locally).
class SegmentEvaluator {
 public:
  struct Stats {
    std::uint64_t rpcs = 0;
    std::uint64_t retries = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t hedges = 0;
  };

  virtual ~SegmentEvaluator() = default;
  virtual void evaluate(const wifi::ScannedUpload& upload, std::size_t begin,
                        std::size_t end, double* features, double* scores) = 0;
  virtual Stats stats() const { return {}; }
};

/// Consistent hashing of tiles onto shards: each shard contributes `vnodes`
/// points to a ring keyed by a 64-bit mix, and a tile belongs to the first
/// ring point at or after its own hash.  Vnode positions depend only on
/// (seed, shard, vnode) — growing the fleet from N to N+1 shards adds the
/// new shard's points without moving any existing ones, so only the tiles
/// captured by the new points change owner (~1/(N+1) of the world), which
/// tests/shard_test.cpp asserts.
class ConsistentHashRing {
 public:
  ConsistentHashRing(std::size_t shards, std::size_t vnodes = 64,
                     std::uint64_t seed = 0x7a11d5u);

  std::size_t shards() const { return shards_; }
  std::size_t owner_of(const TileId& tile) const;

 private:
  std::size_t shards_;
  std::uint64_t seed_;
  /// (ring position, shard), sorted; ties broken by shard id.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
};

struct ShardRouterConfig {
  std::size_t shards = 4;
  /// Geo-cell edge in metres — the granularity ownership moves at.  City
  /// deployments want tiles big enough that a pedestrian stays put for a few
  /// points and small enough to spread hot areas over shards.
  double tile_m = 8.0;
  std::size_t vnodes = 64;
  std::uint64_t ring_seed = 0x7a11d5u;
  /// Per-shard RPD LRU slice configuration.
  ShardedRpdLruCache::Config cache;
  /// Spawn one dedicated worker thread per shard and route segments through
  /// their queues (the scale-out serving shape).  Off by default: fan-out
  /// happens synchronously on the calling thread, and construction spawns
  /// nothing — fork-based harnesses stay safe.
  bool start_workers = false;
};

/// One contiguous run of trajectory points owned by a single shard.
struct TrajectorySegment {
  std::size_t begin = 0;  ///< first point index
  std::size_t end = 0;    ///< one past the last point index
  std::size_t shard = 0;
};

struct ShardRouterCounters {
  std::uint64_t requests = 0;
  std::uint64_t segments = 0;
  std::uint64_t boundary_crossings = 0;  ///< segments - requests, summed
  std::uint64_t errors = 0;
  /// Verdicts that completed only because a remote segment evaluation failed
  /// (after retries/hedging) and the router fell back to its resident slice.
  /// The verdict itself is still bitwise-correct — this counts transport
  /// degradation, the chaos-run observability satellite.
  std::uint64_t degraded_shard_verdicts = 0;
  std::uint64_t remote_segments = 0;  ///< segments answered by a remote shard
  std::vector<std::uint64_t> per_shard_segments;
  /// Per-shard transport counters (rpcs/retries/timeouts/hedges) from the
  /// attached SegmentEvaluators; zeros for shards without one.
  std::vector<SegmentEvaluator::Stats> per_shard_net;
  /// verify() end-to-end latency (sampled on every request).
  std::uint64_t latency_count = 0;
  double latency_p50_us = 0.0;
  double latency_p99_us = 0.0;
};

class ShardRouter {
 public:
  /// Partition the oracle's reference world into shard slices (global grid
  /// geometry, halo included) and copy its classifier/config into every
  /// shard.  The oracle itself is not retained.
  explicit ShardRouter(const wifi::RssiDetector& oracle,
                       ShardRouterConfig config = {});
  ~ShardRouter();
  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Split an upload at shard-ownership boundaries: contiguous, non-empty
  /// segments covering [0, n) in point order (empty for an empty upload).
  std::vector<TrajectorySegment> split(const wifi::ScannedUpload& upload) const;

  /// Verify one upload through the sharded plane.  Payloads match the
  /// single-shard oracle bit for bit on the kOk path; evaluation failures
  /// come back kError (the router has no degraded mode — chaos machinery
  /// lives in VerifierService).
  VerdictResponse verify(const wifi::ScannedUpload& upload,
                         std::uint64_t request_id = 0);

  /// Verify a batch in request order (sequential; concurrency comes from the
  /// per-shard workers and the pool underneath, or from caller threads).
  std::vector<VerdictResponse> verify_batch(
      const std::vector<VerificationRequest>& requests);

  /// Route shard `i`'s segments through a remote evaluator (net_shard's
  /// RemoteSegmentClient).  The resident slice stays as the bitwise fallback:
  /// a remote failure degrades to local evaluation instead of failing the
  /// verdict.  Not thread-safe against in-flight verify() calls — wire the
  /// topology up before serving.
  void set_remote_evaluator(std::size_t shard,
                            std::shared_ptr<SegmentEvaluator> evaluator);

  std::size_t shards() const { return shards_.size(); }
  const ShardService& shard(std::size_t i) const { return *shards_[i]; }
  const ConsistentHashRing& ring() const { return ring_; }
  const ShardRouterConfig& config() const { return config_; }
  /// Halo width the slices were built with (r + R in metres).
  double halo_m() const { return halo_m_; }

  ShardRouterCounters counters() const;

 private:
  ShardRouterConfig config_;
  ConsistentHashRing ring_;
  double halo_m_ = 0.0;
  std::size_t top_k_ = 0;
  std::vector<std::unique_ptr<ShardService>> shards_;
  std::vector<std::shared_ptr<SegmentEvaluator>> remote_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> segments_{0};
  std::atomic<std::uint64_t> crossings_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> remote_segments_{0};
  LatencyHistogram latency_;
};

}  // namespace trajkit::serve
