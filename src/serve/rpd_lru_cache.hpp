// Bounded, shard-locked LRU cache of per-reference-point RPD statistics,
// shared across every request a VerifierService handles.
//
// The experiment-side DenseRpdStatsCache grows with every reference point a
// request touches — unbounded for a long-lived server over a city-sized
// index.  This cache bounds residency: keys hash to one of `shards`
// independently-locked LRU lists, so concurrent batch workers contend only
// per shard, and each shard evicts least-recently-used entries beyond its
// share of `capacity`.
//
// Determinism: cached values are pure functions of the immutable reference
// index, so hit/miss/eviction patterns can never change a verdict — only how
// often stats are rebuilt.  On a miss the builder runs *outside* the shard
// lock; two threads racing on the same key may both build, and the loser's
// (identical) value is discarded.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "wifi/rpd.hpp"

namespace trajkit::serve {

/// Fault point (common/fault) on every shard lookup, keyed by the
/// reference-point index `h` — a "poisoned shard entry" fails the same
/// reference points on every attempt, for every request, on every thread
/// count, so chaos schedules replay bit-identically.
inline constexpr const char* kFaultRpdShard = "serve.rpd_shard";

class ShardedRpdLruCache final : public wifi::RpdStatsCache {
 public:
  struct Config {
    std::size_t capacity = 1 << 16;  ///< total cached reference points
    std::size_t shards = 16;         ///< independent lock domains
  };

  // Out-of-line default ctor rather than `Config config = {}`: a nested
  // aggregate's member initialisers are not usable inside the enclosing
  // class's own member-specification.
  ShardedRpdLruCache();
  explicit ShardedRpdLruCache(Config config);

  std::shared_ptr<const wifi::RpdPointStats> get_or_build(
      std::size_t h,
      const std::function<wifi::RpdPointStats()>& build) override;

  /// Targeted invalidation for online ingestion: drop exactly these
  /// reference-point entries, locking only the shards the keys hash to —
  /// every other shard keeps serving untouched.  Safe against concurrent
  /// get_or_build; readers holding a shared_ptr keep their value.
  void invalidate(const std::vector<std::size_t>& keys) override;

  /// Epoch hot-swap support: a fresh cache with the same config holding every
  /// entry of this one *except* the invalidated keys, recency order
  /// preserved.  Carried entries are shared_ptr copies — no stats are
  /// rebuilt — so publishing a new reference epoch costs O(resident entries)
  /// pointer work plus lazy rebuilds of only the affected points, instead of
  /// a cold cache.  Sound because appends never change the counting
  /// statistics of an unaffected point (integer histograms over the same
  /// neighbour set), and safe against in-flight old-epoch readers because
  /// they keep racing on the *source* cache, never the clone.  Locks one
  /// source shard at a time.
  std::shared_ptr<ShardedRpdLruCache> carry_forward(
      const std::unordered_set<std::size_t>& invalidated) const;

  CacheStats stats() const override;

  /// Entries currently resident (sums shard sizes; racy but monotonic-ish,
  /// for reporting only).
  std::size_t size() const;

  const Config& config() const { return config_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.  The map points into the list.
    std::list<std::pair<std::size_t, std::shared_ptr<const wifi::RpdPointStats>>> lru;
    std::unordered_map<std::size_t, decltype(lru)::iterator> index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  std::size_t shard_of(std::size_t h) const;

  Config config_;
  std::size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace trajkit::serve
