#include "serve/shard_router.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace trajkit::serve {
namespace {

/// SplitMix64 finalizer: the ring's stationary 64-bit mix.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

// ---------------------------------------------------------------------------
// ConsistentHashRing

ConsistentHashRing::ConsistentHashRing(std::size_t shards, std::size_t vnodes,
                                       std::uint64_t seed)
    : shards_(shards), seed_(seed) {
  if (shards == 0) {
    throw std::invalid_argument("ConsistentHashRing: need at least one shard");
  }
  if (vnodes == 0) {
    throw std::invalid_argument("ConsistentHashRing: need at least one vnode");
  }
  ring_.reserve(shards * vnodes);
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t v = 0; v < vnodes; ++v) {
      // Position depends only on (seed, s, v): adding shard N+1 later leaves
      // every existing vnode in place — the stability property.
      const std::uint64_t position =
          mix64(mix64(seed ^ (0x5ca1ab1eull + s)) ^ v);
      ring_.emplace_back(position, static_cast<std::uint32_t>(s));
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t ConsistentHashRing::owner_of(const TileId& tile) const {
  const std::uint64_t h = mix64(seed_ ^ mix64(tile.key()));
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(h, std::uint32_t{0}));
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

// ---------------------------------------------------------------------------
// ShardRouter

ShardRouter::ShardRouter(const wifi::RssiDetector& oracle, ShardRouterConfig config)
    : config_(config),
      ring_(config.shards, config.vnodes, config.ring_seed),
      top_k_(oracle.config().confidence.top_k) {
  if (!(config_.tile_m > 0.0)) {
    throw std::invalid_argument("ShardRouter: tile size must be positive");
  }
  const auto& params = oracle.config().confidence;
  halo_m_ = params.reference_radius_m + params.rpd.counting_radius_m;

  // Slice the global reference set.  A point belongs to shard s when s owns
  // any tile whose covering square around the point reaches — i.e. every
  // tile within the halo of the point — so every radius query a shard can
  // issue for a point it owns (refs within r, then RPD neighbours within R)
  // is answered entirely from its own slice.  Ascending index iteration
  // keeps each slice a stable-order subsequence of the global set, which the
  // bitwise-equivalence contract requires (see the header).
  const auto& index = oracle.index();
  std::vector<std::vector<wifi::ReferencePoint>> slices(config_.shards);
  std::vector<std::size_t> owners;
  for (std::size_t i = 0; i < index.size(); ++i) {
    const auto& point = index[i];
    const TileId lo = tile_of(
        {point.pos.east - halo_m_, point.pos.north - halo_m_}, config_.tile_m);
    const TileId hi = tile_of(
        {point.pos.east + halo_m_, point.pos.north + halo_m_}, config_.tile_m);
    owners.clear();
    for (std::int64_t ty = lo.ty; ty <= hi.ty; ++ty) {
      for (std::int64_t tx = lo.tx; tx <= hi.tx; ++tx) {
        const std::size_t owner = ring_.owner_of({tx, ty});
        if (std::find(owners.begin(), owners.end(), owner) == owners.end()) {
          owners.push_back(owner);
        }
      }
    }
    for (const std::size_t owner : owners) slices[owner].push_back(point);
  }

  shards_.reserve(config_.shards);
  remote_.resize(config_.shards);
  ShardServiceConfig shard_cfg;
  shard_cfg.cache = config_.cache;
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<ShardService>(
        s, std::move(slices[s]), oracle.config(), oracle.classifier(),
        oracle.trained_points(), index.bounds(), shard_cfg));
  }
  if (config_.start_workers) {
    for (auto& shard : shards_) shard->start();
  }
}

ShardRouter::~ShardRouter() {
  for (auto& shard : shards_) shard->stop();
}

std::vector<TrajectorySegment> ShardRouter::split(
    const wifi::ScannedUpload& upload) const {
  std::vector<TrajectorySegment> segments;
  for (std::size_t i = 0; i < upload.positions.size(); ++i) {
    const std::size_t owner =
        ring_.owner_of(tile_of(upload.positions[i], config_.tile_m));
    if (segments.empty() || segments.back().shard != owner) {
      segments.push_back({i, i + 1, owner});
    } else {
      segments.back().end = i + 1;
    }
  }
  return segments;
}

void ShardRouter::set_remote_evaluator(
    std::size_t shard, std::shared_ptr<SegmentEvaluator> evaluator) {
  remote_.at(shard) = std::move(evaluator);
}

VerdictResponse ShardRouter::verify(const wifi::ScannedUpload& upload,
                                    std::uint64_t request_id) {
  VerdictResponse response;
  response.request_id = request_id;
  requests_.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t start_us = steady_clock().now_us();
  try {
    const auto segments = split(upload);
    segments_.fetch_add(segments.size(), std::memory_order_relaxed);
    if (!segments.empty()) {
      crossings_.fetch_add(segments.size() - 1, std::memory_order_relaxed);
    }

    const std::size_t n = upload.positions.size();
    std::vector<double> features(2 * top_k_ * n, 0.0);
    std::vector<double> scores(n, 0.0);
    // Segments owned by a shard with a remote evaluator go over the wire;
    // everything else follows the local worker/sync paths.  A remote failure
    // (post retry/hedge) degrades to the resident slice — same bits, so the
    // verdict stays oracle-equal, and the degradation is counted.
    bool degraded = false;
    bool workers = config_.start_workers;
    const auto eval_remote = [&](const TrajectorySegment& seg) {
      remote_segments_.fetch_add(1, std::memory_order_relaxed);
      try {
        remote_[seg.shard]->evaluate(upload, seg.begin, seg.end,
                                     features.data() + 2 * top_k_ * seg.begin,
                                     scores.data() + seg.begin);
        return true;
      } catch (const std::exception&) {
        degraded = true;  // resident slice answers instead
        return false;
      }
    };
    if (workers) {
      // Remote segments evaluate synchronously on the calling thread (their
      // concurrency lives in the remote shard); local ones queue on their
      // owner's worker, then verify() blocks until the last lands.  Slots
      // are disjoint, so no synchronisation beyond the barrier is needed;
      // verify() owns the storage until wait() returns.
      std::vector<const TrajectorySegment*> local;
      local.reserve(segments.size());
      for (const auto& seg : segments) {
        if (remote_[seg.shard] && eval_remote(seg)) continue;
        local.push_back(&seg);
      }
      SegmentBarrier barrier(local.size());
      for (const TrajectorySegment* seg : local) {
        shards_[seg->shard]->submit_segment(
            {&upload, seg->begin, seg->end,
             features.data() + 2 * top_k_ * seg->begin,
             scores.data() + seg->begin, &barrier});
      }
      barrier.wait();
      if (!barrier.first_error().empty()) {
        throw std::runtime_error(barrier.first_error());
      }
    } else {
      for (const auto& seg : segments) {
        if (remote_[seg.shard] && eval_remote(seg)) continue;
        shards_[seg.shard]->evaluate_segment(
            upload, seg.begin, seg.end, features.data() + 2 * top_k_ * seg.begin,
            scores.data() + seg.begin);
      }
    }
    if (degraded) degraded_.fetch_add(1, std::memory_order_relaxed);

    // The classifier tail runs once over the merged vector — every shard
    // carries an identical classifier copy, so shard 0 speaks for all.  The
    // snapshot keeps shard 0's epoch alive through the classify call even if
    // it hot-swaps mid-request.
    const auto head = shards_[0]->detector_snapshot();
    response.report =
        head->classify_features(std::move(features), std::move(scores));
    response.outcome = Outcome::kOk;
  } catch (const std::exception& e) {
    response.outcome = Outcome::kError;
    response.error = e.what();
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
  latency_.add_us(steady_clock().now_us() - start_us);
  return response;
}

std::vector<VerdictResponse> ShardRouter::verify_batch(
    const std::vector<VerificationRequest>& requests) {
  std::vector<VerdictResponse> responses;
  responses.reserve(requests.size());
  for (const auto& request : requests) {
    responses.push_back(verify(request.upload, request.id));
  }
  return responses;
}

ShardRouterCounters ShardRouter::counters() const {
  ShardRouterCounters out;
  out.requests = requests_.load();
  out.segments = segments_.load();
  out.boundary_crossings = crossings_.load();
  out.errors = errors_.load();
  out.degraded_shard_verdicts = degraded_.load();
  out.remote_segments = remote_segments_.load();
  out.per_shard_segments.reserve(shards_.size());
  for (const auto& shard : shards_) {
    out.per_shard_segments.push_back(shard->segments_evaluated());
  }
  out.per_shard_net.reserve(remote_.size());
  for (const auto& evaluator : remote_) {
    out.per_shard_net.push_back(evaluator ? evaluator->stats()
                                          : SegmentEvaluator::Stats{});
  }
  out.latency_count = latency_.count();
  out.latency_p50_us = latency_.p50_us();
  out.latency_p99_us = latency_.p99_us();
  return out;
}

}  // namespace trajkit::serve
