#include "serve/net_shard.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/durable/journal.hpp"
#include "common/fault.hpp"
#include "common/rng.hpp"
#include "wifi/crowd_store.hpp"

namespace trajkit::serve {
namespace {

/// Keys for different verbs live in disjoint substream ranges, so an apply
/// retried at seq K and a heartbeat carrying leader_next K never share a
/// SimNet fault fate.
constexpr std::uint64_t kHeartbeatKeySalt = 0x6862ull << 48;
constexpr std::uint64_t kTailKeySalt = 0x7461696cull << 24;

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// One RPC with deadline + bounded deterministic-backoff retry.  Counters
/// are the caller's atomics (the per-client stats surface).
net::CallResult call_with_retry_impl(
    net::Transport& transport, const std::string& endpoint,
    const std::string& request, std::uint64_t key, const NetCallPolicy& policy,
    const Clock& clock, std::atomic<std::uint64_t>& rpcs,
    std::atomic<std::uint64_t>& retries, std::atomic<std::uint64_t>& timeouts) {
  net::CallResult result;
  const std::size_t attempts = policy.retry.max_retries + 1;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    rpcs.fetch_add(1, std::memory_order_relaxed);
    result = transport.call(endpoint, request,
                            {policy.rpc_deadline_us, key, attempt});
    if (result.ok()) return result;
    if (result.status == net::CallStatus::kTimeout) {
      timeouts.fetch_add(1, std::memory_order_relaxed);
    }
    if (!result.retryable() || attempt + 1 == attempts) break;
    retries.fetch_add(1, std::memory_order_relaxed);
    clock.sleep_us(net_backoff_delay_us(policy.retry, key, attempt));
  }
  return result;
}

}  // namespace

std::int64_t net_backoff_delay_us(const RetryPolicy& retry, std::uint64_t key,
                                  std::size_t attempt) {
  double delay = static_cast<double>(retry.backoff_base_us);
  for (std::size_t i = 0; i < attempt; ++i) delay *= retry.backoff_multiplier;
  // Jitter in [0.5, 1.5) as a pure function of (seed, key, attempt) — the
  // VerifierService retry discipline, reused so shard RPC timing never
  // depends on thread scheduling.
  Rng jitter =
      Rng::substream(retry.jitter_seed ^ 0x626b6f66ull, key * 31 + attempt);
  delay *= jitter.uniform(0.5, 1.5);
  const auto cap = static_cast<double>(retry.backoff_cap_us);
  if (delay > cap) delay = cap;
  return static_cast<std::int64_t>(delay);
}

// ---------------------------------------------------------------------------
// RemoteFollower

RemoteFollower::RemoteFollower(net::Transport& transport, std::string endpoint,
                               NetCallPolicy policy, const Clock* clock)
    : transport_(transport),
      endpoint_(std::move(endpoint)),
      policy_(policy),
      clock_(clock != nullptr ? clock : &steady_clock()) {}

void RemoteFollower::set_backfill_journal(std::string leader_dir) {
  backfill_dir_ = std::move(leader_dir);
}

net::CallResult RemoteFollower::call_with_retry(const std::string& request,
                                                std::uint64_t key) {
  return call_with_retry_impl(transport_, endpoint_, request, key, policy_,
                              *clock_, rpcs_, retries_, timeouts_);
}

Expected<net::FrameResponse, std::string> RemoteFollower::apply_roundtrip(
    const net::ApplyRequest& request) {
  using Result = Expected<net::FrameResponse, std::string>;
  const net::CallResult result =
      call_with_retry(net::encode_apply(request), request.seq);
  if (!result.ok()) {
    return Result::failure("shard net: apply seq " +
                           std::to_string(request.seq) + " to " + endpoint_ +
                           ": " + result.payload);
  }
  auto response = net::decode_frame_response(result.payload);
  if (!response) return Result::failure("shard net: " + response.error());
  return response;
}

Expected<bool, std::string> RemoteFollower::push_backfill(std::uint64_t from,
                                                          std::uint64_t upto,
                                                          std::uint64_t term) {
  using Result = Expected<bool, std::string>;
  auto tail = durable::Journal::read_records(
      wifi::CrowdStore::journal_path(backfill_dir_),
      wifi::CrowdStore::journal_tag());
  if (!tail) return Result::failure("shard net: backfill: " + tail.error());
  std::uint64_t expected = from;
  for (const auto& record : tail.value().records) {
    if (record.seq < from) continue;
    if (record.seq >= upto) break;
    if (record.seq != expected) {
      return Result::failure(
          "shard net: backfill: journal tail skips seq " +
          std::to_string(expected) +
          " (compacted) — follower must re-bootstrap");
    }
    auto response =
        apply_roundtrip({term, record.seq, record.uploader, record.payload});
    if (!response) return Result::failure(response.error());
    const auto status = response.value().status;
    if (status != net::FrameResponse::Status::kApplied &&
        status != net::FrameResponse::Status::kStale) {
      // A gap *inside* the backfill would mean the journal itself cannot
      // cover the follower's hole — do not recurse.
      return Result::failure("shard net: backfill seq " +
                             std::to_string(record.seq) + " refused");
    }
    ++expected;
  }
  if (expected < upto) {
    return Result::failure("shard net: backfill: journal tail ends at seq " +
                           std::to_string(expected) + ", frame needs " +
                           std::to_string(upto) +
                           " (compacted) — follower must re-bootstrap");
  }
  return true;
}

Expected<bool, std::string> RemoteFollower::apply_frame(
    std::uint64_t seq, const std::string& payload, wifi::UploaderId uploader,
    std::uint64_t term) {
  using Result = Expected<bool, std::string>;
  const net::ApplyRequest request{term, seq, uploader, payload};
  auto response = apply_roundtrip(request);
  if (response && response.value().status == net::FrameResponse::Status::kGap &&
      !backfill_dir_.empty()) {
    // Leader-push gap repair: the follower is missing [its next, seq) — ship
    // that journal tail, then the original frame again.
    gap_backfills_.fetch_add(1, std::memory_order_relaxed);
    auto filled = push_backfill(response.value().value, seq, term);
    if (!filled) return Result::failure(filled.error());
    response = apply_roundtrip(request);
  }
  if (!response) return Result::failure(response.error());
  switch (response.value().status) {
    case net::FrameResponse::Status::kApplied:
      return true;
    case net::FrameResponse::Status::kStale:
      return false;
    case net::FrameResponse::Status::kGap:
      return Result::failure(
          "shard net: follower " + endpoint_ + " gap at seq " +
          std::to_string(seq) + " (expects " +
          std::to_string(response.value().value) + ", no backfill journal)");
    case net::FrameResponse::Status::kFenced:
      fenced_.fetch_add(1, std::memory_order_relaxed);
      return Result::failure(
          "shard net: fenced by follower " + endpoint_ + " (term " +
          std::to_string(response.value().value) + ")");
    case net::FrameResponse::Status::kError:
      return Result::failure("shard net: " + response.value().error);
  }
  return Result::failure("shard net: unreachable");
}

Expected<std::uint64_t, std::string> RemoteFollower::heartbeat(
    std::uint64_t term, std::uint64_t leader_next_seq) {
  using Result = Expected<std::uint64_t, std::string>;
  const net::CallResult result =
      call_with_retry(net::encode_heartbeat({term, leader_next_seq}),
                      kHeartbeatKeySalt ^ leader_next_seq);
  if (!result.ok()) {
    return Result::failure("shard net: heartbeat to " + endpoint_ + ": " +
                           result.payload);
  }
  auto response = net::decode_frame_response(result.payload);
  if (!response) return Result::failure("shard net: " + response.error());
  switch (response.value().status) {
    case net::FrameResponse::Status::kApplied:
      return response.value().value;
    case net::FrameResponse::Status::kFenced:
      fenced_.fetch_add(1, std::memory_order_relaxed);
      return Result::failure("shard net: heartbeat fenced by " + endpoint_ +
                             " (term " +
                             std::to_string(response.value().value) + ")");
    default:
      return Result::failure("shard net: heartbeat: " +
                             response.value().error);
  }
}

NetClientStats RemoteFollower::stats() const {
  NetClientStats s;
  s.rpcs = rpcs_.load();
  s.retries = retries_.load();
  s.timeouts = timeouts_.load();
  s.gap_backfills = gap_backfills_.load();
  s.fenced = fenced_.load();
  return s;
}

// ---------------------------------------------------------------------------
// RemoteSegmentClient

RemoteSegmentClient::RemoteSegmentClient(net::Transport& transport,
                                         std::vector<std::string> endpoints,
                                         std::size_t top_k,
                                         NetCallPolicy policy,
                                         const Clock* clock)
    : transport_(transport),
      endpoints_(std::move(endpoints)),
      top_k_(top_k),
      policy_(policy),
      clock_(clock != nullptr ? clock : &steady_clock()) {
  if (endpoints_.empty()) {
    throw std::invalid_argument("RemoteSegmentClient: need an endpoint");
  }
}

void RemoteSegmentClient::evaluate(const wifi::ScannedUpload& upload,
                                   std::size_t begin, std::size_t end,
                                   double* features, double* scores) {
  if (begin > end || end > upload.positions.size() ||
      upload.positions.size() != upload.scans.size()) {
    throw std::invalid_argument("RemoteSegmentClient: bad segment bounds");
  }
  const std::size_t n = end - begin;
  net::SegmentRequest request;
  request.top_k = top_k_;
  request.upload.source_traj_id = upload.source_traj_id;
  const auto b = static_cast<std::ptrdiff_t>(begin);
  const auto e = static_cast<std::ptrdiff_t>(end);
  request.upload.positions.assign(upload.positions.begin() + b,
                                  upload.positions.begin() + e);
  request.upload.scans.assign(upload.scans.begin() + b,
                              upload.scans.begin() + e);
  const std::string encoded = net::encode_segment(request);
  // The fault-determinism key is the request's own bytes: stable across
  // thread schedules, distinct across segments.
  const std::uint64_t key = fnv1a(encoded);

  const bool can_hedge = endpoints_.size() > 1;
  const std::size_t attempts = policy_.retry.max_retries + 1;
  std::string last_error = "no attempt ran";
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    // Primary first with the short straggler deadline; the hedge fires the
    // same request at the next replica, and later retries round-robin.
    const std::string& endpoint = endpoints_[attempt % endpoints_.size()];
    const std::int64_t deadline = (attempt == 0 && can_hedge)
                                      ? policy_.hedge_deadline_us
                                      : policy_.rpc_deadline_us;
    rpcs_.fetch_add(1, std::memory_order_relaxed);
    const net::CallResult result =
        transport_.call(endpoint, encoded, {deadline, key, attempt});
    if (result.ok()) {
      auto response = net::decode_segment_response(result.payload);
      if (!response) {
        // Application-level refusal (no detector armed, decode failure):
        // retrying the same bytes cannot help.
        throw std::runtime_error("shard net: segment: " + response.error());
      }
      if (response.value().features.size() != 2 * top_k_ * n ||
          response.value().scores.size() != n) {
        throw std::runtime_error("shard net: segment response shape mismatch");
      }
      std::copy(response.value().features.begin(),
                response.value().features.end(), features);
      std::copy(response.value().scores.begin(), response.value().scores.end(),
                scores);
      return;
    }
    last_error = result.payload;
    if (result.status == net::CallStatus::kTimeout) {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!result.retryable() || attempt + 1 == attempts) break;
    if (attempt == 0 && can_hedge) {
      // The hedge fires immediately — backing off would defeat its purpose.
      hedges_.fetch_add(1, std::memory_order_relaxed);
    } else {
      retries_.fetch_add(1, std::memory_order_relaxed);
      clock_->sleep_us(net_backoff_delay_us(policy_.retry, key, attempt));
    }
  }
  throw FaultError("shard net: segment evaluation failed: " + last_error);
}

SegmentEvaluator::Stats RemoteSegmentClient::stats() const {
  Stats s;
  s.rpcs = rpcs_.load();
  s.retries = retries_.load();
  s.timeouts = timeouts_.load();
  s.hedges = hedges_.load();
  return s;
}

// ---------------------------------------------------------------------------
// FollowerNode

FollowerNode::FollowerNode(ShardReplica& replica) : replica_(replica) {}

FollowerNode::FollowerNode(ShardReplica& replica, net::Transport& transport,
                           std::string leader_tail_endpoint,
                           NetCallPolicy policy, const Clock* clock)
    : replica_(replica),
      transport_(&transport),
      leader_tail_endpoint_(std::move(leader_tail_endpoint)),
      policy_(policy),
      clock_(clock != nullptr ? clock : &steady_clock()) {}

net::Handler FollowerNode::handler() {
  return [this](const std::string& request) { return handle(request); };
}

std::string FollowerNode::handle(const std::string& request) {
  switch (net::peek_verb(request)) {
    case net::Verb::kApply:
      return handle_apply(request);
    case net::Verb::kHeartbeat:
      return handle_heartbeat(request);
    default:
      return net::encode_rpc_error("follower: unhandled verb");
  }
}

std::string FollowerNode::handle_apply(const std::string& request) {
  auto decoded = net::decode_apply(request);
  if (!decoded) return net::encode_rpc_error(decoded.error());
  const net::ApplyRequest& req = decoded.value();
  // Self-repair before refusing: when the frame is ahead of us and a leader
  // tail endpoint is configured, pull the missing frames first — the normal
  // post-heal resume then succeeds on its first ship instead of bouncing
  // through a gap response.
  if (transport_ != nullptr && req.seq > replica_.next_seq()) {
    (void)pull_repair();  // a failed pull falls through to the gap response
  }
  auto applied =
      replica_.apply_frame(req.seq, req.payload, req.uploader, req.term);
  net::FrameResponse response;
  if (applied) {
    response.status = applied.value() ? net::FrameResponse::Status::kApplied
                                      : net::FrameResponse::Status::kStale;
    response.value = replica_.next_seq();
  } else if (req.seq > replica_.next_seq()) {
    response.status = net::FrameResponse::Status::kGap;
    response.value = replica_.next_seq();
  } else if (applied.error().find("fenced") != std::string::npos) {
    response.status = net::FrameResponse::Status::kFenced;
    response.value = replica_.term();
  } else {
    response.status = net::FrameResponse::Status::kError;
    response.error = applied.error();
  }
  return net::encode_frame_response(response);
}

std::string FollowerNode::handle_heartbeat(const std::string& request) {
  auto decoded = net::decode_heartbeat(request);
  if (!decoded) return net::encode_rpc_error(decoded.error());
  auto acked =
      replica_.heartbeat(decoded.value().term, decoded.value().leader_next_seq);
  net::FrameResponse response;
  if (acked) {
    response.status = net::FrameResponse::Status::kApplied;
    response.value = acked.value();
  } else if (acked.error().find("fenced") != std::string::npos) {
    response.status = net::FrameResponse::Status::kFenced;
    response.value = replica_.term();
  } else {
    response.status = net::FrameResponse::Status::kError;
    response.error = acked.error();
  }
  return net::encode_frame_response(response);
}

Expected<std::uint64_t, std::string> FollowerNode::pull_repair() {
  using Result = Expected<std::uint64_t, std::string>;
  if (transport_ == nullptr || leader_tail_endpoint_.empty()) {
    return Result::failure("follower: no leader tail endpoint configured");
  }
  bool progressed = false;
  for (;;) {
    const std::uint64_t from = replica_.next_seq();
    const net::CallResult result = call_with_retry_impl(
        *transport_, leader_tail_endpoint_,
        net::encode_tail({from, policy_.tail_chunk}), kTailKeySalt ^ from,
        policy_, *clock_, rpcs_, retries_, timeouts_);
    if (!result.ok()) {
      return Result::failure("follower: tail pull from " +
                             leader_tail_endpoint_ + ": " + result.payload);
    }
    auto frames = net::decode_tail_response(result.payload);
    if (!frames) return Result::failure("follower: " + frames.error());
    if (frames.value().empty()) break;
    for (const net::TailFrame& frame : frames.value()) {
      if (frame.seq < replica_.next_seq()) continue;  // idempotent overlap
      auto applied = replica_.apply_frame(frame.seq, frame.payload,
                                          frame.uploader, replica_.term());
      if (!applied) return Result::failure("follower: " + applied.error());
    }
    progressed = true;
    if (frames.value().size() < policy_.tail_chunk) break;
  }
  if (progressed) gap_repairs_.fetch_add(1, std::memory_order_relaxed);
  // Converged as far as the leader's journal reaches.  If the last heartbeat
  // says the leader is still ahead, the missing frames were compacted into
  // its snapshot — repair cannot invent them.
  const std::uint64_t leader_next = replica_.leader_next_seen();
  if (leader_next > replica_.next_seq()) {
    return Result::failure(
        "follower: tail exhausted at seq " +
        std::to_string(replica_.next_seq()) + " but leader is at " +
        std::to_string(leader_next) +
        " — journal compacted, follower must re-bootstrap");
  }
  return replica_.next_seq();
}

Expected<std::uint64_t, std::string> FollowerNode::repair_if_behind() {
  if (replica_.leader_next_seen() <= replica_.next_seq()) {
    return replica_.next_seq();
  }
  return pull_repair();
}

NetClientStats FollowerNode::stats() const {
  NetClientStats s;
  s.rpcs = rpcs_.load();
  s.retries = retries_.load();
  s.timeouts = timeouts_.load();
  s.gap_backfills = gap_repairs_.load();
  return s;
}

// ---------------------------------------------------------------------------
// Server handlers

net::Handler make_tail_handler(std::string wal_dir) {
  return [dir = std::move(wal_dir)](const std::string& request) -> std::string {
    auto decoded = net::decode_tail(request);
    if (!decoded) return net::encode_rpc_error(decoded.error());
    const std::uint64_t from = decoded.value().from_seq;
    const std::uint64_t cap = decoded.value().max_frames;
    // Read-only scan per request — never an append fd on the leader's WAL —
    // so the handler works identically against a live or a dead leader.
    auto tail = durable::Journal::read_records(
        wifi::CrowdStore::journal_path(dir), wifi::CrowdStore::journal_tag());
    if (!tail) return net::encode_rpc_error("tail: " + tail.error());
    std::vector<net::TailFrame> frames;
    for (const auto& record : tail.value().records) {
      if (record.seq < from) continue;
      if (frames.empty() && record.seq != from) {
        return net::encode_rpc_error(
            "tail: compacted — journal starts at seq " +
            std::to_string(record.seq) + ", requested " +
            std::to_string(from));
      }
      if (!frames.empty() && record.seq != frames.back().seq + 1) {
        return net::encode_rpc_error("tail: journal not contiguous at seq " +
                                     std::to_string(record.seq));
      }
      frames.push_back({record.seq, record.uploader, record.payload});
      if (cap != 0 && frames.size() >= cap) break;
    }
    return net::encode_tail_response(frames);
  };
}

net::Handler make_segment_handler(const ShardService& shard) {
  return [&shard](const std::string& request) -> std::string {
    auto decoded = net::decode_segment(request);
    if (!decoded) return net::encode_rpc_error(decoded.error());
    // One RCU snapshot per request: a concurrent hot_swap cannot destroy the
    // index mid-walk, matching the local evaluate_segment discipline.
    const auto detector = shard.detector_snapshot();
    if (!detector) return net::encode_rpc_error("segment: no detector armed");
    net::SegmentResponse response;
    try {
      detector->segment_features(decoded.value().upload, response.features,
                                 response.scores);
    } catch (const std::exception& e) {
      return net::encode_rpc_error(std::string("segment: ") + e.what());
    }
    return net::encode_segment_response(response);
  };
}

// ---------------------------------------------------------------------------
// ShardNode

void ShardNode::serve_follower(std::shared_ptr<FollowerNode> follower) {
  follower_ = std::move(follower);
}

void ShardNode::serve_tail(std::string wal_dir) {
  tail_ = make_tail_handler(std::move(wal_dir));
}

void ShardNode::serve_segments(const ShardService* shard) {
  segments_ = shard != nullptr ? make_segment_handler(*shard) : net::Handler{};
}

net::Handler ShardNode::handler() {
  return [this](const std::string& request) -> std::string {
    switch (net::peek_verb(request)) {
      case net::Verb::kApply:
      case net::Verb::kHeartbeat:
        if (follower_) return follower_->handler()(request);
        return net::encode_rpc_error("node: no follower attached");
      case net::Verb::kTail:
        if (tail_) return tail_(request);
        return net::encode_rpc_error("node: no tail source attached");
      case net::Verb::kSegment:
        if (segments_) return segments_(request);
        return net::encode_rpc_error("node: no segment shard attached");
      default:
        return net::encode_rpc_error("node: unknown verb");
    }
  };
}

}  // namespace trajkit::serve
