#include "serve/shard_service.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "common/durable/durable_file.hpp"
#include "common/durable/journal.hpp"
#include "common/fault.hpp"

namespace trajkit::serve {

// ---------------------------------------------------------------------------
// SegmentBarrier

SegmentBarrier::SegmentBarrier(std::size_t count) : remaining_(count) {}

void SegmentBarrier::finish(std::string error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (error_.empty() && !error.empty()) error_ = std::move(error);
  if (remaining_ > 0) --remaining_;
  if (remaining_ == 0) cv_.notify_all();
}

void SegmentBarrier::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return remaining_ == 0; });
}

// ---------------------------------------------------------------------------
// ShardReplica

Expected<std::unique_ptr<ShardReplica>, std::string> ShardReplica::open(
    const std::string& dir, bool sync_each_append) {
  using Result = Expected<std::unique_ptr<ShardReplica>, std::string>;
  auto store = wifi::CrowdStore::open(dir, sync_each_append);
  if (!store) return Result::failure("shard replica: " + store.error());
  return Result(std::unique_ptr<ShardReplica>(
      new ShardReplica(dir, std::move(store).value())));
}

Expected<std::unique_ptr<ShardReplica>, std::string> ShardReplica::bootstrap(
    const std::string& leader_dir, const std::string& dir, bool sync_each_append) {
  using Result = Expected<std::unique_ptr<ShardReplica>, std::string>;
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Result::failure("shard replica: cannot create " + dir + ": " +
                           std::strerror(errno));
  }

  // 1. The snapshot, copied atomically: the follower either has the complete
  // leader snapshot or none, never a torn one.  A missing leader snapshot
  // just means the leader never compacted — the journal tail is everything.
  const std::string leader_snapshot = wifi::CrowdStore::snapshot_path(leader_dir);
  struct stat st {};
  if (::stat(leader_snapshot.c_str(), &st) == 0) {
    auto bytes = durable::read_file(leader_snapshot);
    if (!bytes) return Result::failure("shard replica: " + bytes.error());
    auto copied = durable::write_file_atomic(wifi::CrowdStore::snapshot_path(dir),
                                             bytes.value());
    if (!copied) return Result::failure("shard replica: " + copied.error());
  }

  auto replica = open(dir, sync_each_append);
  if (!replica) return replica;

  // 2. The journal tail, scanned read-only (the leader may be dead; we must
  // not truncate or take an append fd on its files).  Replay goes through
  // apply_frame so records the copied snapshot already covers skip on seq.
  auto tail = durable::Journal::read_records(
      wifi::CrowdStore::journal_path(leader_dir), wifi::CrowdStore::journal_tag());
  if (!tail) return Result::failure("shard replica: " + tail.error());
  for (const auto& record : tail.value().records) {
    auto applied =
        replica.value()->apply_frame(record.seq, record.payload, record.uploader);
    if (!applied) return Result::failure(applied.error());
  }
  return replica;
}

Expected<bool, std::string> ShardReplica::apply_frame(std::uint64_t seq,
                                                      const std::string& payload,
                                                      wifi::UploaderId uploader,
                                                      std::uint64_t term) {
  using Result = Expected<bool, std::string>;
  std::lock_guard<std::mutex> lock(apply_mu_);
  // Fencing: a frame from a term below the highest seen is a deposed
  // leader's — refuse it before touching the WAL.  Equal terms are fine
  // (the common single-leader case); a higher term adopts.
  std::uint64_t seen = term_seen_.load(std::memory_order_relaxed);
  if (term < seen) {
    return Result::failure("shard replica: fenced: frame term " +
                           std::to_string(term) + " < seen term " +
                           std::to_string(seen));
  }
  if (term > seen) term_seen_.store(term, std::memory_order_relaxed);
  const std::uint64_t next = store_->next_seq();
  if (seq < next) return Result(false);  // already applied; redelivery is a no-op
  if (seq > next) {
    return Result::failure("shard replica: replication gap in " + dir_ +
                           ": got seq " + std::to_string(seq) + ", expected " +
                           std::to_string(next));
  }
  // Control frames ride the same WAL as the points: epoch markers and
  // quarantine reviews re-journal verbatim instead of decoding as a point.
  if (!payload.empty() && payload[0] == '#') {
    auto appended = store_->append_control(payload);
    if (!appended) {
      return Result::failure("shard replica: seq " + std::to_string(seq) + ": " +
                             appended.error());
    }
    return Result(true);
  }
  auto point = wifi::CrowdStore::decode_point(payload);
  if (!point) return Result::failure("shard replica: " + point.error());
  auto appended = store_->append(point.value(), uploader);
  if (!appended) return Result::failure("shard replica: " + appended.error());
  return Result(true);
}

Expected<std::uint64_t, std::string> ShardReplica::heartbeat(
    std::uint64_t term, std::uint64_t leader_next_seq) {
  using Result = Expected<std::uint64_t, std::string>;
  std::uint64_t seen = term_seen_.load(std::memory_order_relaxed);
  while (term > seen &&
         !term_seen_.compare_exchange_weak(seen, term, std::memory_order_relaxed)) {
  }
  if (term < seen) {
    return Result::failure("shard replica: fenced: heartbeat term " +
                           std::to_string(term) + " < seen term " +
                           std::to_string(seen));
  }
  leader_next_seen_.store(leader_next_seq, std::memory_order_relaxed);
  last_heartbeat_us_.store(clock_->now_us(), std::memory_order_relaxed);
  return store_->next_seq();
}

bool ShardReplica::leader_alive(std::int64_t lease_us) const {
  const std::int64_t last = last_heartbeat_us_.load(std::memory_order_relaxed);
  if (last < 0) return false;
  return clock_->now_us() - last <= lease_us;
}

std::uint64_t ShardReplica::promote() {
  const std::uint64_t next_term = term_seen_.load(std::memory_order_relaxed) + 1;
  term_seen_.store(next_term, std::memory_order_relaxed);
  return next_term;
}

// ---------------------------------------------------------------------------
// ShardService

ShardService::ShardService(std::size_t shard_id,
                           std::vector<wifi::ReferencePoint> slice,
                           const wifi::RssiDetectorConfig& config,
                           gbt::GbtClassifier classifier, std::size_t trained_points,
                           const BoundingBox& index_bounds, ShardServiceConfig cfg)
    : shard_id_(shard_id),
      cache_(std::make_shared<ShardedRpdLruCache>(cfg.cache)),
      det_config_(config),
      classifier_(classifier),
      trained_points_(trained_points),
      index_bounds_(index_bounds),
      cache_cfg_(cfg.cache),
      required_follower_acks_(cfg.required_follower_acks) {
  detector_ = wifi::RssiDetector::assemble(std::move(slice), config,
                                           std::move(classifier), trained_points,
                                           index_bounds);
  detector_->set_rpd_cache(cache_);
}

ShardService::ShardService(std::size_t shard_id,
                           std::unique_ptr<wifi::CrowdStore> store,
                           ShardServiceConfig cfg)
    : shard_id_(shard_id),
      store_(std::move(store)),
      required_follower_acks_(cfg.required_follower_acks) {}

Expected<std::unique_ptr<ShardService>, std::string> ShardService::open_leader(
    std::size_t shard_id, const std::string& dir, bool sync_each_append,
    ShardServiceConfig cfg) {
  using Result = Expected<std::unique_ptr<ShardService>, std::string>;
  auto store = wifi::CrowdStore::open(dir, sync_each_append);
  if (!store) return Result::failure("shard leader: " + store.error());
  return Result(std::unique_ptr<ShardService>(
      new ShardService(shard_id, std::move(store).value(), cfg)));
}

ShardService::~ShardService() { stop(); }

void ShardService::attach_follower(FollowerLink* follower) {
  followers_.push_back(follower);
  follower_failures_.push_back(0);
  follower_errors_.emplace_back();
}

std::size_t ShardService::required_acks() const {
  return std::min(required_follower_acks_, followers_.size());
}

Expected<std::uint64_t, std::string> ShardService::ship_to_followers(
    std::uint64_t seq, const std::string& payload, wifi::UploaderId uploader) {
  using Result = Expected<std::uint64_t, std::string>;
  // Ship the frame to every follower; the acknowledgement is issued only
  // after the quorum's own WALs hold it.  The fault points bracket each
  // follower append so the failover harness can kill the leader with the
  // frame in every intermediate state.  A failed follower does not abort the
  // fan-out — the rest still receive the frame, and the failure lands in
  // follower_failures()/follower_errors() for the repair machinery.
  auto& faults = global_faults();
  std::size_t acks = 0;
  std::string first_error;
  for (std::size_t i = 0; i < followers_.size(); ++i) {
    std::string error;
    if (faults.should_fail_seq(kFaultShipFrame, seq)) {
      error = "shard: injected fault shipping frame " + std::to_string(seq);
    } else {
      auto applied = followers_[i]->apply_frame(seq, payload, uploader, term_);
      if (!applied) {
        error = applied.error();
      } else if (faults.should_fail_seq(kFaultShipApplied, seq)) {
        error = "shard: injected fault acknowledging frame " + std::to_string(seq);
      }
    }
    if (error.empty()) {
      ++acks;
    } else {
      ++follower_failures_[i];
      follower_errors_[i] = error;
      if (first_error.empty()) first_error = std::move(error);
    }
  }
  if (acks < required_acks()) {
    return Result::failure(first_error.empty() ? "shard: follower quorum not met"
                                               : first_error);
  }
  ++acked_;
  return Result(seq);
}

Expected<std::uint64_t, std::string> ShardService::ingest(
    const wifi::ReferencePoint& point, wifi::UploaderId uploader) {
  using Result = Expected<std::uint64_t, std::string>;
  if (!store_) return Result::failure("shard: no store attached");

  // Leader-durable first: the WAL append fsyncs before returning a seq.
  auto seq = store_->append(point, uploader);
  if (!seq) return seq;
  return ship_to_followers(seq.value(), wifi::CrowdStore::encode_point(point),
                           uploader);
}

std::size_t ShardService::send_heartbeats() {
  const std::uint64_t leader_next = store_ ? store_->next_seq() : 0;
  std::size_t answered = 0;
  for (std::size_t i = 0; i < followers_.size(); ++i) {
    auto ack = followers_[i]->heartbeat(term_, leader_next);
    if (ack) {
      ++answered;
    } else {
      ++follower_failures_[i];
      follower_errors_[i] = ack.error();
    }
  }
  return answered;
}

Expected<bool, std::string> ShardService::compact() {
  using Result = Expected<bool, std::string>;
  if (!store_) return Result::failure("shard: no store attached");
  return store_->compact();
}

Expected<std::uint64_t, std::string> ShardService::ship_epoch_marker(
    std::uint64_t epoch) {
  return ship_control(wifi::CrowdStore::encode_epoch_marker(epoch));
}

Expected<std::uint64_t, std::string> ShardService::ship_motion_marker(
    std::uint64_t epoch) {
  return ship_control(wifi::CrowdStore::encode_motion_epoch_marker(epoch));
}

Expected<std::uint64_t, std::string> ShardService::ship_control(
    const std::string& payload) {
  using Result = Expected<std::uint64_t, std::string>;
  if (!store_) return Result::failure("shard: no store attached");
  auto seq = store_->append_control(payload);
  if (!seq) return seq;
  // Same shipping discipline (and fault points) as point frames: followers
  // hold the marker durably before it is acknowledged.
  return ship_to_followers(seq.value(), payload, wifi::kAnonymousUploader);
}

std::shared_ptr<const wifi::RssiDetector> ShardService::detector_snapshot() const {
  std::lock_guard<std::mutex> lock(swap_mu_);
  return detector_;
}

const ShardedRpdLruCache* ShardService::cache() const {
  std::lock_guard<std::mutex> lock(swap_mu_);
  return cache_.get();
}

std::uint64_t ShardService::epoch() const {
  std::lock_guard<std::mutex> lock(swap_mu_);
  return epoch_;
}

Expected<std::uint64_t, std::string> ShardService::hot_swap(
    std::vector<wifi::ReferencePoint> slice, std::uint64_t epoch) {
  using Result = Expected<std::uint64_t, std::string>;
  std::shared_ptr<wifi::RssiDetector> cur;
  std::shared_ptr<ShardedRpdLruCache> cur_cache;
  {
    std::lock_guard<std::mutex> lock(swap_mu_);
    cur = detector_;
    cur_cache = cache_;
  }
  if (!cur) return Result::failure("shard: hot_swap needs an armed detector");
  if (slice.size() < cur->index().size()) {
    return Result::failure("shard: hot_swap slice shrank (epochs are append-only)");
  }
  // The appended tail determines the affected reference points (serving-index
  // radius query at the RPD counting radius); everything else's counting
  // statistics are unchanged, so the LRU carries those entries forward.
  const double radius = cur->confidence().rpd().params().counting_radius_m;
  std::unordered_set<std::size_t> affected;
  for (std::size_t i = cur->index().size(); i < slice.size(); ++i) {
    for (const std::size_t h : cur->index().within(slice[i].pos, radius)) {
      affected.insert(h);
    }
  }
  auto fresh =
      wifi::RssiDetector::assemble(std::move(slice), det_config_, classifier_,
                                   trained_points_, index_bounds_);
  std::shared_ptr<ShardedRpdLruCache> next_cache =
      cur_cache ? cur_cache->carry_forward(affected)
                : std::make_shared<ShardedRpdLruCache>(cache_cfg_);
  fresh->set_rpd_cache(next_cache);
  std::lock_guard<std::mutex> lock(swap_mu_);
  detector_ = std::move(fresh);
  cache_ = std::move(next_cache);
  epoch_ = epoch;
  return Result(epoch);
}

Expected<bool, std::string> ShardService::arm_verification(
    const wifi::RssiDetectorConfig& config, gbt::GbtClassifier classifier,
    std::size_t trained_points, const BoundingBox& index_bounds,
    ShardedRpdLruCache::Config cache_cfg) {
  using Result = Expected<bool, std::string>;
  if (!store_) return Result::failure("shard: arm_verification needs a store");
  if (detector_snapshot()) {
    return Result::failure("shard: verification already armed");
  }
  det_config_ = config;
  classifier_ = classifier;
  trained_points_ = trained_points;
  index_bounds_ = index_bounds;
  cache_cfg_ = cache_cfg;
  auto fresh = wifi::RssiDetector::assemble(store_->points(), config,
                                            std::move(classifier), trained_points,
                                            index_bounds);
  auto cache = std::make_shared<ShardedRpdLruCache>(cache_cfg);
  fresh->set_rpd_cache(cache);
  std::lock_guard<std::mutex> lock(swap_mu_);
  detector_ = std::move(fresh);
  cache_ = std::move(cache);
  epoch_ = store_->observed_epoch();
  return Result(true);
}

Expected<std::uint64_t, std::string> ShardService::refresh_from_store(
    std::uint64_t epoch) {
  using Result = Expected<std::uint64_t, std::string>;
  if (!store_) return Result::failure("shard: refresh_from_store needs a store");
  return hot_swap(store_->points(),
                  epoch != 0 ? epoch : store_->observed_epoch());
}

void ShardService::evaluate_segment(const wifi::ScannedUpload& upload,
                                    std::size_t begin, std::size_t end,
                                    double* features, double* scores) const {
  // One RCU snapshot per segment: a concurrent hot_swap cannot destroy the
  // index this segment is walking — the segment finishes on its epoch.
  const std::shared_ptr<const wifi::RssiDetector> detector = detector_snapshot();
  if (!detector) throw std::logic_error("shard: no detector attached");
  if (begin > end || end > upload.positions.size() ||
      upload.positions.size() != upload.scans.size()) {
    throw std::invalid_argument("shard: bad segment bounds");
  }
  wifi::ScannedUpload segment;
  segment.source_traj_id = upload.source_traj_id;
  segment.positions.assign(upload.positions.begin() + static_cast<long>(begin),
                           upload.positions.begin() + static_cast<long>(end));
  segment.scans.assign(upload.scans.begin() + static_cast<long>(begin),
                       upload.scans.begin() + static_cast<long>(end));

  std::vector<double> seg_features;
  std::vector<double> seg_scores;
  detector->segment_features(segment, seg_features, seg_scores);
  std::copy(seg_features.begin(), seg_features.end(), features);
  std::copy(seg_scores.begin(), seg_scores.end(), scores);
  segments_.fetch_add(1, std::memory_order_relaxed);
}

void ShardService::submit_segment(const SegmentTask& task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) {
      throw std::logic_error("shard: worker not running (call start())");
    }
    queue_.push_back(task);
  }
  work_cv_.notify_one();
}

void ShardService::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stopping_ = false;
  running_ = true;
  worker_ = std::thread([this] { worker_loop(); });
}

void ShardService::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  worker_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

bool ShardService::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void ShardService::worker_loop() {
  for (;;) {
    SegmentTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = queue_.front();
      queue_.pop_front();
    }
    std::string error;
    try {
      evaluate_segment(*task.upload, task.begin, task.end, task.features,
                       task.scores);
    } catch (const std::exception& e) {
      error = e.what();
    }
    if (task.barrier != nullptr) task.barrier->finish(std::move(error));
  }
}

}  // namespace trajkit::serve
