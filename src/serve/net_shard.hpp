// The shard protocol over a net::Transport: remote followers, hedged segment
// reads, leader heartbeats, and post-heal WAL gap repair.
//
// This is the glue between serve/shard_service (which speaks FollowerLink /
// SegmentEvaluator) and src/net (which moves opaque request/response
// payloads).  Nothing here assumes a particular backend — the same classes
// run over SimNet in the chaos suite and over UDS between real processes.
//
// Client side:
//   RemoteFollower       FollowerLink over the wire: per-RPC deadline,
//                        bounded retry with the PR 3 deterministic-jitter
//                        backoff, and leader-push gap backfill — on a "gap"
//                        response it re-ships the missing journal tail from
//                        the leader's own WAL, then the original frame, so a
//                        follower that fell behind under a one-way partition
//                        converges as soon as traffic resumes.
//   RemoteSegmentClient  SegmentEvaluator over the wire with hedged fan-out:
//                        the primary endpoint gets a short hedge deadline;
//                        a straggler triggers the same request against the
//                        next replica endpoint (reads are idempotent, so
//                        hedging is free of write races).
//
// Server side:
//   FollowerNode         binds a ShardReplica behind a handler (apply/hb
//                        verbs), and owns the *pull* half of gap repair:
//                        when a frame or heartbeat reveals the replica is
//                        behind, it requests a targeted journal-tail
//                        backfill from the leader's tail endpoint and
//                        applies it through the normal seq discipline.
//   make_tail_handler    serves "tail" requests from a leader WAL directory
//                        (read-only Journal scan — works against a live or
//                        dead leader, exactly like replica bootstrap).
//   make_segment_handler serves "seg" requests from a ShardService's
//                        RCU-snapshotted detector.
//   ShardNode            one endpoint per process: dispatches all verbs to
//                        the parts a node actually has.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/expected.hpp"
#include "net/rpc.hpp"
#include "net/transport.hpp"
#include "serve/shard_router.hpp"
#include "serve/shard_service.hpp"

namespace trajkit::serve {

/// Deadline/retry/hedge policy for shard RPCs.  `retry` reuses the serving
/// layer's RetryPolicy verbatim — same bounded count, same deterministic
/// jitter substream discipline.
struct NetCallPolicy {
  RetryPolicy retry;
  std::int64_t rpc_deadline_us = 50'000;
  /// Straggler threshold for hedged segment reads: the primary gets this
  /// much, then the hedge fires against the next endpoint.  Only meaningful
  /// with >1 endpoint.
  std::int64_t hedge_deadline_us = 10'000;
  /// Frames per tail RPC during gap repair (bounds response size).
  std::uint64_t tail_chunk = 1024;
};

/// Deterministic retry backoff: the VerifierService jitter formula keyed by
/// (jitter_seed, key, attempt) — a pure function, so chaos runs replay.
std::int64_t net_backoff_delay_us(const RetryPolicy& retry, std::uint64_t key,
                                  std::size_t attempt);

/// Transport-side counters a remote client accumulates.
struct NetClientStats {
  std::uint64_t rpcs = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t hedges = 0;
  std::uint64_t gap_backfills = 0;
  std::uint64_t fenced = 0;
};

/// FollowerLink over a Transport.  apply_frame/heartbeat ship the RPC with
/// deadline + bounded deterministic retry; set_backfill_journal arms the
/// leader-push half of gap repair.
class RemoteFollower final : public FollowerLink {
 public:
  RemoteFollower(net::Transport& transport, std::string endpoint,
                 NetCallPolicy policy = {}, const Clock* clock = nullptr);

  /// Arm leader-push backfill: on a "gap" response, re-ship the missing
  /// frames from this leader WAL directory (read-only journal scan), then
  /// the original frame.  Without it a gap is just reported as failure.
  void set_backfill_journal(std::string leader_dir);

  Expected<bool, std::string> apply_frame(std::uint64_t seq,
                                          const std::string& payload,
                                          wifi::UploaderId uploader,
                                          std::uint64_t term) override;
  Expected<std::uint64_t, std::string> heartbeat(
      std::uint64_t term, std::uint64_t leader_next_seq) override;

  NetClientStats stats() const;
  const std::string& endpoint() const { return endpoint_; }

 private:
  net::CallResult call_with_retry(const std::string& request, std::uint64_t key);
  Expected<net::FrameResponse, std::string> apply_roundtrip(
      const net::ApplyRequest& request);
  /// Push frames [from, upto) from the backfill journal to the follower.
  Expected<bool, std::string> push_backfill(std::uint64_t from,
                                            std::uint64_t upto,
                                            std::uint64_t term);

  net::Transport& transport_;
  std::string endpoint_;
  NetCallPolicy policy_;
  const Clock* clock_;
  std::string backfill_dir_;

  std::atomic<std::uint64_t> rpcs_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> gap_backfills_{0};
  std::atomic<std::uint64_t> fenced_{0};
};

/// SegmentEvaluator over a Transport with hedged fan-out reads.  `endpoints`
/// lists replicas serving the same shard slice, primary first; the primary
/// gets hedge_deadline_us (when alternatives exist), stragglers hedge to the
/// next endpoint, and remaining retries round-robin.  Throws FaultError when
/// every attempt fails — the router catches and falls back locally.
class RemoteSegmentClient final : public SegmentEvaluator {
 public:
  RemoteSegmentClient(net::Transport& transport,
                      std::vector<std::string> endpoints, std::size_t top_k,
                      NetCallPolicy policy = {}, const Clock* clock = nullptr);

  void evaluate(const wifi::ScannedUpload& upload, std::size_t begin,
                std::size_t end, double* features, double* scores) override;
  Stats stats() const override;

 private:
  net::Transport& transport_;
  std::vector<std::string> endpoints_;
  std::size_t top_k_;
  NetCallPolicy policy_;
  const Clock* clock_;

  std::atomic<std::uint64_t> rpcs_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> hedges_{0};
};

/// Follower-side server: dispatches apply/hb onto a ShardReplica and, when a
/// leader tail endpoint is configured, pulls targeted journal backfills to
/// close its own gaps (detected from an ahead-of-us frame seq or heartbeat
/// leader_next).
class FollowerNode {
 public:
  explicit FollowerNode(ShardReplica& replica);
  /// With a transport + the leader's tail endpoint, the node self-repairs.
  FollowerNode(ShardReplica& replica, net::Transport& transport,
               std::string leader_tail_endpoint, NetCallPolicy policy = {},
               const Clock* clock = nullptr);

  /// The verb dispatcher to bind on this node's endpoint.
  net::Handler handler();

  /// Pull the leader's journal tail from next_seq() forward and apply it
  /// (chunked; loops to convergence).  Returns the new next_seq.  Errors
  /// when no tail endpoint is configured, the transport fails after
  /// retries, or the requested tail was compacted away (the follower must
  /// re-bootstrap from a snapshot — repair cannot invent folded frames).
  Expected<std::uint64_t, std::string> pull_repair();

  /// pull_repair() only when the last heartbeat showed the leader ahead —
  /// the post-heal convergence step a follower runs on its lease timer.
  Expected<std::uint64_t, std::string> repair_if_behind();

  NetClientStats stats() const;
  ShardReplica& replica() { return replica_; }

 private:
  std::string handle(const std::string& request);
  std::string handle_apply(const std::string& request);
  std::string handle_heartbeat(const std::string& request);

  ShardReplica& replica_;
  net::Transport* transport_ = nullptr;
  std::string leader_tail_endpoint_;
  NetCallPolicy policy_;
  const Clock* clock_ = &steady_clock();

  std::atomic<std::uint64_t> rpcs_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> gap_repairs_{0};
};

/// Serve "tail" requests from a WAL directory: a read-only journal scan per
/// request (never an append fd), so it works against live and dead leaders
/// alike.  Responds "err compacted ..." when from_seq predates the journal
/// (frames folded into the snapshot) — the client must re-bootstrap.
net::Handler make_tail_handler(std::string wal_dir);

/// Serve "seg" requests from a shard's detector (RCU snapshot per request).
/// Features/scores round-trip through %.17g text — bit-exact, so a remote
/// segment is indistinguishable from a local one in the merged verdict.
net::Handler make_segment_handler(const ShardService& shard);

/// One endpoint per process: dispatch every verb this node can serve.
/// Unhandled verbs answer "err ...".  Any part may be absent.
class ShardNode {
 public:
  ShardNode() = default;

  void serve_follower(std::shared_ptr<FollowerNode> follower);
  void serve_tail(std::string wal_dir);
  void serve_segments(const ShardService* shard);

  net::Handler handler();

 private:
  std::shared_ptr<FollowerNode> follower_;
  net::Handler tail_;
  net::Handler segments_;
};

}  // namespace trajkit::serve
