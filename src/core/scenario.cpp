#include "core/scenario.hpp"

#include "common/parallel.hpp"

namespace trajkit::core {

ScenarioConfig ScenarioConfig::for_mode(Mode mode) {
  ScenarioConfig cfg;
  cfg.mode = mode;
  // Shared radio defaults calibrated against Table III (see bench_table3):
  // ~25 m practical visibility, dense storefront APs.
  cfg.wifi.tx_dbm_mean = -35.0;
  cfg.wifi.ple_mean = 3.0;
  cfg.wifi.visibility_floor_dbm = -77;
  switch (mode) {
    case Mode::kWalking:
      // Area A: mall outdoor area, 3.4 hm^2 (~185 m square), dense APs.
      cfg.city = {.blocks_x = 5,
                  .blocks_y = 5,
                  .block_size_m = 46.0,
                  .jitter_m = 5.0,
                  .arterial_every = 4,
                  .drop_probability = 0.06,
                  .diagonal_probability = 0.08,
                  .footpath_probability = 0.25};
      cfg.wifi.ap_count = 370;
      cfg.wifi.ap_road_offset_m = 6.0;
      cfg.seed = 101;
      break;
    case Mode::kCycling:
      // Area B: pedestrian street by a community, 4.1 hm^2.
      cfg.city = {.blocks_x = 6,
                  .blocks_y = 5,
                  .block_size_m = 48.0,
                  .jitter_m = 5.0,
                  .arterial_every = 3,
                  .drop_probability = 0.07,
                  .diagonal_probability = 0.06,
                  .footpath_probability = 0.20};
      cfg.wifi.ap_count = 440;
      cfg.wifi.ap_road_offset_m = 7.0;
      cfg.seed = 202;
      break;
    case Mode::kDriving:
      // Area C: commercial main road, 5.9 hm^2; APs sit farther from the
      // roadway, so drivers hear markedly fewer of them (Table III: avg 9).
      cfg.city = {.blocks_x = 8,
                  .blocks_y = 6,
                  .block_size_m = 58.0,
                  .jitter_m = 6.0,
                  .arterial_every = 2,
                  .drop_probability = 0.06,
                  .diagonal_probability = 0.04,
                  .footpath_probability = 0.10};
      cfg.wifi.ap_count = 380;
      cfg.wifi.ap_road_offset_m = 14.0;
      cfg.seed = 303;
      break;
  }
  return cfg;
}

ScenarioConfig ScenarioConfig::indoor_walking() {
  ScenarioConfig cfg = for_mode(Mode::kWalking);
  // A mall floor: tight corridor grid, ~120 m on a side.
  cfg.city = {.blocks_x = 7,
              .blocks_y = 7,
              .block_size_m = 18.0,
              .jitter_m = 1.5,
              .arterial_every = 3,
              .drop_probability = 0.10,
              .diagonal_probability = 0.02,
              .footpath_probability = 0.9};  // corridors, not car roads
  // Indoor GPS: multipath-dominated, metres of correlated error.
  cfg.gps.sigma_m = 4.0;
  cfg.gps.correlation = 0.9;
  // Indoor WiFi: very dense storefront APs, shorter-range propagation
  // (walls), more structured shadowing.
  cfg.wifi.ap_count = 350;
  cfg.wifi.ap_road_offset_m = 3.0;
  cfg.wifi.ple_mean = 3.6;
  cfg.wifi.shadow_sigma_db = 5.0;
  cfg.wifi.shadow_wavelength_min_m = 4.0;
  cfg.wifi.shadow_wavelength_max_m = 15.0;
  cfg.wifi.visibility_floor_dbm = -80;
  cfg.seed = 404;
  return cfg;
}

Scenario::Scenario(ScenarioConfig config)
    : config_(config), rng_(config.seed), network_(map::make_city(config.city, rng_)) {
  wifi_ = std::make_unique<sim::WifiWorld>(
      sim::WifiWorld::deploy(network_, config_.wifi, rng_));
  simulator_ = std::make_unique<sim::TrajectorySimulator>(network_, config_.gps);
}

// Batch generation fans out one trajectory per task.  Each task draws from
// its own counter-based RNG sub-stream keyed by a single draw from the
// scenario stream, so (a) the batch is a deterministic function of the
// scenario seed and how many draws preceded it, and (b) the result is
// byte-identical for any thread count.

std::vector<sim::SimulatedTrajectory> Scenario::real_trajectories(std::size_t count,
                                                                  std::size_t points,
                                                                  double interval_s) {
  std::vector<sim::SimulatedTrajectory> out(count);
  const std::uint64_t key = rng_.next();
  parallel_for(0, count, 1, [&](std::size_t i) {
    Rng sub = Rng::substream(key, i);
    out[i] = simulator_->simulate_real(config_.mode, points, interval_s, sub);
  });
  return out;
}

std::vector<sim::SimulatedTrajectory> Scenario::navigation_trajectories(
    std::size_t count, std::size_t points, double interval_s) {
  std::vector<sim::SimulatedTrajectory> out(count);
  const std::uint64_t key = rng_.next();
  parallel_for(0, count, 1, [&](std::size_t i) {
    Rng sub = Rng::substream(key, i);
    out[i] = simulator_->navigation_trajectory(config_.mode, points, interval_s, sub);
  });
  return out;
}

std::vector<sim::ScannedTrajectory> Scenario::scanned_real(std::size_t count,
                                                           std::size_t points,
                                                           double interval_s) {
  std::vector<sim::ScannedTrajectory> out(count);
  const std::uint64_t key = rng_.next();
  parallel_for(0, count, 1, [&](std::size_t i) {
    Rng sub = Rng::substream(key, i);
    const auto traj =
        simulator_->simulate_real(config_.mode, points, interval_s, sub);
    out[i] = sim::attach_scans(traj, *wifi_, sub);
  });
  return out;
}

}  // namespace trajkit::core
