#include "core/rssi_pipeline.hpp"

#include <algorithm>
#include <stdexcept>

#include "attack/mind.hpp"
#include "attack/replay.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "serve/service.hpp"

namespace trajkit::core {
namespace {

/// Thin a scan to `keep` fraction of its APs (random deletion, Fig. 6).
wifi::WifiScan thin_scan(const wifi::WifiScan& scan, double keep, Rng& rng) {
  if (keep >= 1.0) return scan;
  wifi::WifiScan out;
  for (const auto& obs : scan) {
    if (rng.chance(keep)) out.push_back(obs);
  }
  // Never drop the whole scan — real clients always report what they heard.
  if (out.empty() && !scan.empty()) out.push_back(scan.front());
  return out;
}

void thin_upload(wifi::ScannedUpload& upload, double keep, Rng& rng) {
  if (keep >= 1.0) return;
  for (auto& scan : upload.scans) scan = thin_scan(scan, keep, rng);
}

}  // namespace

wifi::ScannedUpload to_upload(const sim::ScannedTrajectory& traj) {
  wifi::ScannedUpload upload;
  upload.positions = traj.reported.to_enu(sim::sim_projection());
  upload.scans = traj.scans;
  return upload;
}

wifi::ScannedUpload forge_upload(const sim::ScannedTrajectory& historical,
                                 double dtw_offset_m, int disturbance_db, Rng& rng) {
  wifi::ScannedUpload upload;
  const auto hist_pts = historical.reported.to_enu(sim::sim_projection());
  // Same displacement smoothness as the C&W attack's iterates (cw.hpp
  // init_correlation): the RSSI experiment judges the forgeries the motion
  // attack actually produces.
  upload.positions =
      attack::smooth_replay_perturbation(hist_pts, dtw_offset_m, rng, 0.997);
  upload.scans = historical.scans;
  for (auto& scan : upload.scans) {
    for (auto& obs : scan) {
      obs.rssi_dbm += static_cast<int>(
          rng.uniform_int(-disturbance_db, disturbance_db));
    }
  }
  return upload;
}

RssiExperimentResult run_rssi_experiment(Scenario& scenario,
                                         const RssiExperimentConfig& config) {
  return run_rssi_experiment_on(scenario, collect_rssi_dataset(scenario, config),
                                config);
}

std::vector<sim::ScannedTrajectory> collect_rssi_dataset(
    Scenario& scenario, const RssiExperimentConfig& config) {
  if (config.total < 20) {
    throw std::invalid_argument("collect_rssi_dataset: total too small");
  }
  return scenario.scanned_real(config.total, config.points, config.interval_s);
}

RssiExperimentResult run_rssi_experiment_on(
    Scenario& scenario, const std::vector<sim::ScannedTrajectory>& collected,
    const RssiExperimentConfig& config) {
  if (collected.size() < 20) {
    throw std::invalid_argument("run_rssi_experiment_on: dataset too small");
  }
  Rng& rng = scenario.rng();
  const double replay_offset =
      config.replay_offset_m > 0.0
          ? config.replay_offset_m
          : attack::paper_mind(scenario.mode()) + 0.1;

  // 2. Split: 80% history, 20% fresh (the paper's 4,000 / 1,000).
  const std::size_t hist_count = collected.size() * 4 / 5;
  const std::vector<sim::ScannedTrajectory> history(collected.begin(),
                                                    collected.begin() + hist_count);
  const std::vector<sim::ScannedTrajectory> fresh(collected.begin() + hist_count,
                                                  collected.end());

  // Crowdsourced reference store, optionally thinned (Fig. 5).
  std::vector<wifi::ReferencePoint> refs;
  for (std::size_t t = 0; t < history.size(); ++t) {
    const auto pts = history[t].reported.to_enu(sim::sim_projection());
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (config.reference_keep >= 1.0 || rng.chance(config.reference_keep)) {
        refs.push_back({pts[i], history[t].scans[i], static_cast<std::uint32_t>(t)});
      }
    }
  }

  wifi::RssiDetectorConfig det_cfg = config.detector;
  det_cfg.confidence.reference_radius_m = config.reference_radius_m;
  det_cfg.confidence.top_k = config.top_k;
  wifi::RssiDetector detector(std::move(refs), det_cfg);

  // 3. Training set: 60% of history as normal uploads, the next 20% forged
  //    twice each (replay + navigation-style).
  const std::size_t train_real_count = hist_count * 3 / 4;  // 3,000 of 4,000

  std::vector<wifi::ScannedUpload> train;
  std::vector<int> train_labels;
  for (std::size_t i = 0; i < train_real_count; ++i) {
    auto upload = to_upload(history[i]);
    upload.source_traj_id = static_cast<std::uint32_t>(i);  // no self-voting
    train.push_back(std::move(upload));
    train_labels.push_back(1);
  }
  for (std::size_t i = train_real_count; i < hist_count; ++i) {
    train.push_back(
        forge_upload(history[i], replay_offset, config.rssi_disturbance_db, rng));
    train_labels.push_back(0);
    train.push_back(forge_upload(history[i], config.navigation_offset_m,
                                 config.rssi_disturbance_db, rng));
    train_labels.push_back(0);
  }

  // 4. Test set: fresh reals + equally many fakes from random history.
  std::vector<wifi::ScannedUpload> test;
  std::vector<int> test_labels;
  for (const auto& traj : fresh) {
    test.push_back(to_upload(traj));
    test_labels.push_back(1);
  }
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    const auto& source = history[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hist_count) - 1))];
    const bool replay_style = rng.chance(0.5);
    test.push_back(forge_upload(
        source, replay_style ? replay_offset : config.navigation_offset_m,
        config.rssi_disturbance_db, rng));
    test_labels.push_back(0);
  }

  // Fig. 6 knob: thin every upload's scans.
  for (auto& upload : train) thin_upload(upload, config.ap_keep, rng);
  for (auto& upload : test) thin_upload(upload, config.ap_keep, rng);

  // 5. Train, then evaluate through the serving layer.  The service is the
  // production face of the detector, so the experiment scores its test set the
  // same way a deployment would: one micro-batched verify_batch call, every
  // request sharing the service's bounded RPD LRU.  verify_batch fans out per
  // upload on the deterministic pool and returns responses in request order,
  // so the serial running-stat fold below is identical for every thread count.
  detector.train(train, train_labels);

  serve::VerifierServiceConfig serve_cfg;
  serve_cfg.auto_start = false;  // sync path only; no dispatcher thread
  serve::VerifierService service(detector, serve_cfg);

  std::vector<serve::VerificationRequest> requests;
  requests.reserve(test.size());
  for (std::size_t i = 0; i < test.size(); ++i) {
    requests.push_back({static_cast<std::uint64_t>(i), std::move(test[i]), 0});
  }
  const std::vector<serve::VerdictResponse> responses =
      service.verify_batch(requests);

  // Side statistics (scan sizes, reference coverage) are not part of the
  // verdict; compute them from the same uploads in a second read-only pass.
  struct EvalRow {
    std::vector<double> scan_sizes;
    std::vector<double> ref_counts;
  };
  std::vector<EvalRow> rows(requests.size());
  parallel_for(0, requests.size(), 1, [&](std::size_t i) {
    EvalRow& row = rows[i];
    const wifi::ScannedUpload& upload = requests[i].upload;
    row.scan_sizes.reserve(upload.scans.size());
    for (const auto& scan : upload.scans) {
      row.scan_sizes.push_back(static_cast<double>(scan.size()));
    }
    row.ref_counts.reserve(upload.positions.size());
    for (const auto& pos : upload.positions) {
      row.ref_counts.push_back(
          static_cast<double>(detector.confidence().reference_count(pos)));
    }
  });

  RssiExperimentResult result;
  RunningStats k_stats;
  RunningStats ref_stats;
  std::vector<double> k_values;
  std::vector<double> scores;
  scores.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (responses[i].outcome != serve::Outcome::kOk) {
      throw std::runtime_error("run_rssi_experiment_on: verification failed: " +
                               responses[i].error);
    }
    scores.push_back(responses[i].report.p_real);
    result.confusion.add(test_labels[i], responses[i].report.verdict);
    for (const double k : rows[i].scan_sizes) {
      k_stats.add(k);
      k_values.push_back(k);
    }
    for (const double c : rows[i].ref_counts) ref_stats.add(c);
  }
  result.auc = roc_auc(test_labels, scores);
  result.avg_k = k_stats.mean();
  result.min_k = k_stats.min();
  result.k_p10 = percentile(std::move(k_values), 10.0);
  result.avg_refs_per_point = ref_stats.mean();
  const double area = M_PI * config.reference_radius_m * config.reference_radius_m;
  result.ref_density_per_m2 = ref_stats.mean() / area;
  return result;
}

}  // namespace trajkit::core
