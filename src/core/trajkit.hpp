// Umbrella header: the full trajkit public API.
//
// trajkit reproduces "Are You Moving as You Claim: GPS Trajectory Forgery and
// Detection in Location-Based Services" (ICDCS 2022).  Quick tour:
//
//   core::Scenario           — a simulated evaluation area (map + GPS + WiFi)
//   core::MotionModels       — the paper's four motion classifiers
//   attack::CwAttacker       — adversarial trajectory forgery (Sec. II)
//   attack::naive_noise_attack / smooth_replay_perturbation — baseline attacks
//   wifi::RssiDetector       — the RSSI-based defense J(T, H) (Sec. III)
//   serve::VerifierService   — batched serving layer around a trained detector
//   core::run_rssi_experiment— the Sec. IV-B evaluation protocol
//
// See examples/quickstart.cpp for a end-to-end walkthrough.
#pragma once

#include "attack/cw.hpp"
#include "attack/gradient_baselines.hpp"
#include "attack/spsa.hpp"
#include "attack/mind.hpp"
#include "attack/naive.hpp"
#include "attack/replay.hpp"
#include "baseline/accel_check.hpp"
#include "baseline/replay_check.hpp"
#include "baseline/rssi_similarity.hpp"
#include "baseline/rule_based.hpp"
#include "common/cli.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/motion_pipeline.hpp"
#include "core/rssi_pipeline.hpp"
#include "core/scenario.hpp"
#include "dtw/dtw.hpp"
#include "dtw/soft_dtw.hpp"
#include "gbt/booster.hpp"
#include "geo/geo.hpp"
#include "map/city.hpp"
#include "map/matcher.hpp"
#include "map/nav.hpp"
#include "nn/classifier.hpp"
#include "serve/service.hpp"
#include "sim/accelerometer.hpp"
#include "sim/dataset.hpp"
#include "traj/features.hpp"
#include "traj/io.hpp"
#include "traj/preprocess.hpp"
#include "traj/trajectory.hpp"
#include "wifi/detector.hpp"
