// Motion-classifier experiment pipeline (Sec. IV-A, Tables I and II).
//
// Builds the labelled motion dataset (real trajectories vs. naive replay /
// naive navigation fakes), trains the paper's four detection models —
//   C       : LSTM over (Edu, Angle) displacement features (target model)
//   XGBoost : gradient-boosted trees over location + state summary features
//   LSTM-1  : LSTM over (dx, dy) displacement features
//   LSTM-2  : two-layer LSTM over (Edu, Angle)
// — and evaluates them against naive and adversarial attacks.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "core/scenario.hpp"
#include "gbt/booster.hpp"
#include "nn/classifier.hpp"
#include "traj/features.hpp"

namespace trajkit::core {

/// One labelled motion sample.  ENU coordinates feed the LSTMs (and the C&W
/// attack); the Trajectory feeds the XGBoost summary features.
struct MotionSample {
  std::vector<Enu> points;
  Trajectory trajectory;
  int label = 1;          ///< 1 = real, 0 = fake
  bool from_replay = false;  ///< fake provenance (replay vs navigation)
};

struct MotionDatasetConfig {
  std::size_t train_real = 400;
  std::size_t train_fake = 200;  ///< split evenly between replay / navigation
  std::size_t test_real = 200;
  std::size_t test_fake = 200;   ///< split evenly between replay / navigation
  std::size_t points = 96;
  double interval_s = 1.0;
};

struct MotionDataset {
  std::vector<MotionSample> train;
  std::vector<MotionSample> test;
};

/// Simulate and label the dataset inside `scenario`.
MotionDataset build_motion_dataset(Scenario& scenario, const MotionDatasetConfig& config);

struct MotionModelConfig {
  std::size_t hidden = 32;
  std::size_t epochs = 14;
  double learning_rate = 3e-3;
  std::size_t batch_size = 16;
  gbt::GbtConfig xgb;
  std::uint64_t seed = 17;
  bool verbose = false;  ///< print per-epoch training telemetry
};

/// The four trained models plus the encoders they consume.
class MotionModels {
 public:
  MotionModels(const MotionDataset& dataset, const MotionModelConfig& config);

  const nn::LstmClassifier& model_c() const { return *c_; }
  const nn::LstmClassifier& lstm1() const { return *lstm1_; }
  const nn::LstmClassifier& lstm2() const { return *lstm2_; }
  const gbt::GbtClassifier& xgboost() const { return xgb_; }
  const DistAngleEncoder& dist_angle_encoder() const { return dist_angle_; }
  const DxDyEncoder& dx_dy_encoder() const { return dx_dy_; }

  /// Model names in paper order: C(LSTM), XGBoost, LSTM-1, LSTM-2.
  static const std::vector<std::string>& model_names();

  /// Predicted label (1 = real, 0 = fake) of one sample under each model,
  /// in model_names() order.
  std::vector<int> predict_all(const MotionSample& sample) const;

  /// Predict with a single model by name.
  int predict(const std::string& model_name, const MotionSample& sample) const;

 private:
  DistAngleEncoder dist_angle_;
  DxDyEncoder dx_dy_;
  std::unique_ptr<nn::LstmClassifier> c_;
  std::unique_ptr<nn::LstmClassifier> lstm1_;
  std::unique_ptr<nn::LstmClassifier> lstm2_;
  gbt::GbtClassifier xgb_;
};

/// Table I: per-model confusion matrices over a labelled sample set.
struct ModelEvaluation {
  std::string name;
  ConfusionMatrix confusion;
};
std::vector<ModelEvaluation> evaluate_models(const MotionModels& models,
                                             const std::vector<MotionSample>& samples);

}  // namespace trajkit::core
