// End-to-end experiment world.
//
// A Scenario bundles everything one of the paper's evaluation areas needs:
// the synthetic road network, the navigation service, the mobility/GPS
// simulator and the deployed WiFi environment.  Per-mode default
// configurations model the paper's three areas — the mall outdoor area A
// (walking, 3.4 hm^2), pedestrian street B (cycling, 4.1 hm^2) and
// commercial main road C (driving, 5.9 hm^2) — with AP densities calibrated
// so the per-scan AP count statistics land near Table III.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "map/city.hpp"
#include "map/nav.hpp"
#include "sim/dataset.hpp"
#include "sim/wifi_world.hpp"

namespace trajkit::core {

struct ScenarioConfig {
  Mode mode = Mode::kWalking;
  map::CityConfig city;
  sim::WifiWorldConfig wifi;
  sim::GpsErrorConfig gps;
  std::uint64_t seed = 7;

  /// Paper-area defaults: walking -> area A, cycling -> area B,
  /// driving -> area C.
  static ScenarioConfig for_mode(Mode mode);

  /// Indoor shopping-mall variant — the paper's deferred future work
  /// (Sec. II-A: "We leave the indoor trajectory forgery and detection in
  /// future work").  Indoors, GPS degrades badly (multipath: sigma in metres)
  /// while WiFi gets denser and more structured; bench_indoor_extension
  /// quantifies how the two halves of the paper shift in that regime.
  static ScenarioConfig indoor_walking();
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);

  const ScenarioConfig& config() const { return config_; }
  Mode mode() const { return config_.mode; }
  const map::RoadNetwork& network() const { return network_; }
  const sim::WifiWorld& wifi() const { return *wifi_; }
  const sim::TrajectorySimulator& simulator() const { return *simulator_; }
  Rng& rng() { return rng_; }

  /// Batch of genuine trajectories (the OSM-like dataset).
  std::vector<sim::SimulatedTrajectory> real_trajectories(std::size_t count,
                                                          std::size_t points,
                                                          double interval_s);

  /// Batch of navigation resamples (the AN-like dataset).
  std::vector<sim::SimulatedTrajectory> navigation_trajectories(std::size_t count,
                                                                std::size_t points,
                                                                double interval_s);

  /// Genuine trajectories with a WiFi scan per point (the collection app).
  std::vector<sim::ScannedTrajectory> scanned_real(std::size_t count,
                                                   std::size_t points,
                                                   double interval_s);

 private:
  ScenarioConfig config_;
  Rng rng_;
  map::RoadNetwork network_;
  std::unique_ptr<sim::WifiWorld> wifi_;
  std::unique_ptr<sim::TrajectorySimulator> simulator_;
};

}  // namespace trajkit::core
