// WiFi RSSI defense experiment pipeline (Sec. IV-B, Table IV, Figs. 4-6).
//
// Reproduces the paper's protocol in one of the three areas:
//   1. collect `total` genuine trajectories with a scan at every point;
//   2. keep 80% as the provider's crowdsourced history H;
//   3. training set: 60% of H as "normal" uploads + replay/navigation fakes
//      built from a further 20% of H, each with its RSSI values replayed with
//      a random disturbance from {-1, 0, +1} dB;
//   4. test set: the non-historical 20% as fresh real uploads + the same
//      number of fakes built from randomly-chosen historical trajectories;
//   5. train the Eq. 8 + XGBoost detector and report the confusion matrix.
//
// The experiment knobs mirror the paper's sweeps: reference radius r
// (Fig. 4), reference-point keep fraction (Fig. 5), per-scan AP keep
// fraction (Fig. 6), and ablation switches for theta_1/theta_2/RPD smoothing.
#pragma once

#include "common/metrics.hpp"
#include "core/scenario.hpp"
#include "wifi/detector.hpp"

namespace trajkit::core {

struct RssiExperimentConfig {
  std::size_t total = 900;     ///< trajectories collected (paper: 5,000)
  std::size_t points = 30;     ///< points per trajectory (paper: 30)
  double interval_s = 2.0;     ///< sampling interval (paper: 2 s)

  double reference_radius_m = 2.5;  ///< r (Fig. 4 sweep)
  std::size_t top_k = 8;            ///< strongest APs per point
  double reference_keep = 1.0;      ///< Fig. 5: fraction of H retained
  double ap_keep = 1.0;             ///< Fig. 6: fraction of APs kept per scan
  int rssi_disturbance_db = 1;      ///< fake RSSI +- uniform{-d..d}

  /// Replay fakes sit at normalised DTW ~= this above the historical record
  /// (the C&W replay outcome); navigation fakes roam further.
  double replay_offset_m = 0.0;  ///< 0 = use paper MinD for the mode + 0.1
  double navigation_offset_m = 3.0;

  wifi::RssiDetectorConfig detector;
};

struct RssiExperimentResult {
  ConfusionMatrix confusion;
  double auc = 0.0;  ///< threshold-free detector quality (ROC AUC)
  double avg_k = 0.0;                 ///< mean APs per scan over test uploads
  double min_k = 0.0;                 ///< minimum APs in any test scan
  double k_p10 = 0.0;                 ///< 10th percentile (Table III's "90% >=")
  double avg_refs_per_point = 0.0;    ///< mean reference points within r
  double ref_density_per_m2 = 0.0;    ///< the Fig. 5 density measure
};

/// Run the full protocol inside `scenario` (collects its own data).
RssiExperimentResult run_rssi_experiment(Scenario& scenario,
                                         const RssiExperimentConfig& config);

/// Collect the raw scanned trajectories once; the Fig. 4-6 sweeps re-run the
/// detector protocol over the same collection with different knobs.
std::vector<sim::ScannedTrajectory> collect_rssi_dataset(
    Scenario& scenario, const RssiExperimentConfig& config);

/// Run the protocol on a pre-collected dataset (steps 2-5 only).
RssiExperimentResult run_rssi_experiment_on(
    Scenario& scenario, const std::vector<sim::ScannedTrajectory>& collected,
    const RssiExperimentConfig& config);

/// Build a forged upload from a historical scanned trajectory: positions are
/// perturbed at the given normalised-DTW offset, RSSIs are replayed with the
/// +-disturbance.  Exposed for the examples and tests.
wifi::ScannedUpload forge_upload(const sim::ScannedTrajectory& historical,
                                 double dtw_offset_m, int disturbance_db, Rng& rng);

/// Convert a genuine scanned trajectory into the upload the provider sees.
wifi::ScannedUpload to_upload(const sim::ScannedTrajectory& traj);

}  // namespace trajkit::core
