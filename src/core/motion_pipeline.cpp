#include "core/motion_pipeline.hpp"

#include <cstdio>
#include <stdexcept>

#include "attack/naive.hpp"

namespace trajkit::core {
namespace {

MotionSample make_sample(std::vector<Enu> points, Mode mode, double interval_s,
                         int label, bool from_replay) {
  MotionSample s;
  s.trajectory =
      Trajectory::from_enu(points, sim::sim_projection(), mode, interval_s);
  s.points = std::move(points);
  s.label = label;
  s.from_replay = from_replay;
  return s;
}

FeatureSequence encode(const FeatureEncoder& enc, const MotionSample& s) {
  return enc.encode(s.points);
}

std::vector<FeatureSequence> encode_all(const FeatureEncoder& enc,
                                        const std::vector<MotionSample>& samples) {
  std::vector<FeatureSequence> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(encode(enc, s));
  return out;
}

std::vector<int> labels_of(const std::vector<MotionSample>& samples) {
  std::vector<int> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(s.label);
  return out;
}

}  // namespace

MotionDataset build_motion_dataset(Scenario& scenario,
                                   const MotionDatasetConfig& config) {
  MotionDataset ds;
  const Mode mode = scenario.mode();
  Rng& rng = scenario.rng();

  auto emit = [&](std::vector<MotionSample>& dest, std::size_t real_count,
                  std::size_t fake_count) {
    // Real trajectories: the OSM-like genuine dataset.
    for (auto& traj :
         scenario.real_trajectories(real_count, config.points, config.interval_s)) {
      dest.push_back(make_sample(traj.reported.to_enu(sim::sim_projection()), mode,
                                 config.interval_s, 1, false));
    }
    // Naive replay fakes: fresh genuine trajectories re-uploaded with i.i.d.
    // noise (the attacker replays their own history).
    const std::size_t replay_count = fake_count / 2;
    for (auto& traj :
         scenario.real_trajectories(replay_count, config.points, config.interval_s)) {
      auto pts = traj.reported.to_enu(sim::sim_projection());
      dest.push_back(make_sample(attack::naive_noise_attack(pts, rng), mode,
                                 config.interval_s, 0, true));
    }
    // Naive navigation fakes: AN resamples plus the same noise.
    const std::size_t nav_count = fake_count - replay_count;
    for (auto& traj : scenario.navigation_trajectories(nav_count, config.points,
                                                       config.interval_s)) {
      auto pts = traj.reported.to_enu(sim::sim_projection());
      dest.push_back(make_sample(attack::naive_noise_attack(pts, rng), mode,
                                 config.interval_s, 0, false));
    }
  };
  emit(ds.train, config.train_real, config.train_fake);
  emit(ds.test, config.test_real, config.test_fake);
  rng.shuffle(ds.train);
  return ds;
}

const std::vector<std::string>& MotionModels::model_names() {
  static const std::vector<std::string> names = {"C(LSTM)", "XGBoost", "LSTM-1",
                                                 "LSTM-2"};
  return names;
}

MotionModels::MotionModels(const MotionDataset& dataset, const MotionModelConfig& config)
    : xgb_(config.xgb) {
  if (dataset.train.empty()) {
    throw std::invalid_argument("MotionModels: empty training set");
  }
  const auto labels = labels_of(dataset.train);

  auto train_lstm = [&](const FeatureEncoder& enc, std::size_t layers,
                        std::uint64_t seed, const char* name) {
    nn::LstmClassifierConfig cfg;
    cfg.input_dim = enc.dim();
    cfg.hidden_dim = config.hidden;
    cfg.num_layers = layers;
    cfg.learning_rate = config.learning_rate;
    cfg.batch_size = config.batch_size;
    auto model = std::make_unique<nn::LstmClassifier>(cfg, seed);
    const auto xs = encode_all(enc, dataset.train);
    model->train(xs, labels, config.epochs,
                 [&](std::size_t epoch, double loss, double acc) {
                   if (config.verbose) {
                     std::printf("  [%s] epoch %zu loss=%.4f acc=%.4f\n", name, epoch,
                                 loss, acc);
                   }
                 });
    return model;
  };

  c_ = train_lstm(dist_angle_, 1, config.seed, "C");
  lstm1_ = train_lstm(dx_dy_, 1, config.seed + 1, "LSTM-1");
  lstm2_ = train_lstm(dist_angle_, 2, config.seed + 2, "LSTM-2");

  std::vector<std::vector<double>> xgb_x;
  xgb_x.reserve(dataset.train.size());
  for (const auto& s : dataset.train) {
    xgb_x.push_back(motion_summary_features(s.trajectory, sim::sim_projection()));
  }
  xgb_.train(xgb_x, labels);
}

std::vector<int> MotionModels::predict_all(const MotionSample& sample) const {
  std::vector<int> out;
  out.reserve(4);
  out.push_back(c_->predict(encode(dist_angle_, sample)));
  out.push_back(xgb_.predict(
      motion_summary_features(sample.trajectory, sim::sim_projection())));
  out.push_back(lstm1_->predict(encode(dx_dy_, sample)));
  out.push_back(lstm2_->predict(encode(dist_angle_, sample)));
  return out;
}

int MotionModels::predict(const std::string& model_name,
                          const MotionSample& sample) const {
  const auto& names = model_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == model_name) return predict_all(sample)[i];
  }
  throw std::invalid_argument("MotionModels::predict: unknown model " + model_name);
}

std::vector<ModelEvaluation> evaluate_models(const MotionModels& models,
                                             const std::vector<MotionSample>& samples) {
  const auto& names = MotionModels::model_names();
  std::vector<ModelEvaluation> evals;
  evals.reserve(names.size());
  for (const auto& name : names) evals.push_back({name, {}});
  // Encode each LSTM's feature view once and run whole sample sets through
  // the batched kernel path; per-sequence probabilities are bit-identical to
  // predict_all's one-at-a-time calls, so the confusion matrices are too.
  const auto dist_angle = encode_all(models.dist_angle_encoder(), samples);
  const auto dx_dy = encode_all(models.dx_dy_encoder(), samples);
  const auto p_c = models.model_c().predict_proba_batch(dist_angle);
  const auto p_1 = models.lstm1().predict_proba_batch(dx_dy);
  const auto p_2 = models.lstm2().predict_proba_batch(dist_angle);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const int label = samples[i].label;
    evals[0].confusion.add(label, p_c[i] >= 0.5 ? 1 : 0);
    evals[1].confusion.add(label, models.xgboost().predict(motion_summary_features(
                                      samples[i].trajectory, sim::sim_projection())));
    evals[2].confusion.add(label, p_1[i] >= 0.5 ? 1 : 0);
    evals[3].confusion.add(label, p_2[i] >= 0.5 ? 1 : 0);
  }
  return evals;
}

}  // namespace trajkit::core
