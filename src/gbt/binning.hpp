// Quantile feature binning for the histogram-based gradient-boosted trees.
//
// Continuous features are discretised into at most `max_bins` quantile bins
// computed on the training data; tree learning then scans bin histograms
// instead of sorted feature values (the "hist" strategy of XGBoost/LightGBM,
// the paper's reference [29] family).
#pragma once

#include <cstdint>
#include <vector>

namespace trajkit::gbt {

/// Per-feature quantile bin edges.  Values v are mapped to the first bin b
/// with v <= edge[b]; values above the last edge map to the last bin.
class FeatureBins {
 public:
  FeatureBins() = default;

  /// Build edges from one feature column (any order, NaN not allowed).
  static FeatureBins fit(const std::vector<double>& column, std::size_t max_bins);

  std::uint16_t bin_of(double v) const;
  std::size_t bin_count() const { return edges_.size(); }
  /// Upper edge of bin b — the raw-value threshold a split at b encodes.
  double edge(std::size_t b) const { return edges_[b]; }

 private:
  std::vector<double> edges_;  // ascending upper edges, last == +max sentinel
};

/// Binned dataset: row-major uint16 bins plus per-feature edges.
class BinnedMatrix {
 public:
  /// Fit bins on X (rows of equal width) and encode every row.
  static BinnedMatrix fit_transform(const std::vector<std::vector<double>>& x,
                                    std::size_t max_bins);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::uint16_t at(std::size_t r, std::size_t c) const { return bins_[r * cols_ + c]; }
  const FeatureBins& feature(std::size_t c) const { return features_[c]; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint16_t> bins_;
  std::vector<FeatureBins> features_;
};

}  // namespace trajkit::gbt
