// Single regression tree of the gradient-boosting ensemble.
//
// Trees are grown depth-first on binned features with second-order (Newton)
// gain, exactly the XGBoost objective: for a candidate split separating
// gradient/hessian sums (GL, HL) / (GR, HR),
//   gain = 1/2 [ GL^2/(HL+lambda) + GR^2/(HR+lambda) - G^2/(H+lambda) ] - gamma
// and a leaf takes weight -G/(H+lambda).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "gbt/binning.hpp"

namespace trajkit::gbt {

struct TreeConfig {
  std::size_t max_depth = 4;
  double lambda = 1.0;            ///< L2 regularisation on leaf weights
  double gamma = 0.0;             ///< minimum split gain
  double min_child_weight = 1.0;  ///< minimum hessian sum per child
};

/// Flat node storage; leaves have feature == -1.
struct TreeNode {
  int feature = -1;
  double split_value = 0.0;      ///< raw-value threshold (go left if v <= split)
  std::uint16_t split_bin = 0;   ///< same threshold in bin space
  int left = -1;
  int right = -1;
  double leaf_value = 0.0;
  double gain = 0.0;             ///< split gain, for feature importance
};

class Tree {
 public:
  /// Grow a tree on the rows `row_indices` of the binned matrix, fitting the
  /// per-row gradients/hessians.
  static Tree grow(const BinnedMatrix& data, const std::vector<double>& grad,
                   const std::vector<double>& hess,
                   const std::vector<std::size_t>& row_indices, const TreeConfig& config);

  /// Predict from raw (un-binned) feature values.
  double predict(const std::vector<double>& row) const;

  const std::vector<TreeNode>& nodes() const { return nodes_; }

  /// Accumulate per-feature total split gain into `importance`.
  void add_importance(std::vector<double>& importance) const;

  void save(std::ostream& os) const;
  static Tree load(std::istream& is);

 private:
  std::vector<TreeNode> nodes_;
};

}  // namespace trajkit::gbt
