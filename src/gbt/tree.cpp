#include "gbt/tree.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace trajkit::gbt {
namespace {

struct BinStat {
  double grad = 0.0;
  double hess = 0.0;
};

struct BestSplit {
  double gain = 0.0;
  int feature = -1;
  std::uint16_t bin = 0;
};

double leaf_weight(double g, double h, double lambda) { return -g / (h + lambda); }

double score(double g, double h, double lambda) { return g * g / (h + lambda); }

}  // namespace

Tree Tree::grow(const BinnedMatrix& data, const std::vector<double>& grad,
                const std::vector<double>& hess,
                const std::vector<std::size_t>& row_indices, const TreeConfig& config) {
  if (grad.size() != data.rows() || hess.size() != data.rows()) {
    throw std::invalid_argument("Tree::grow: gradient size mismatch");
  }
  Tree tree;
  // Work queue entry: node id plus its row range inside `rows`.
  struct Item {
    int node;
    std::size_t begin;
    std::size_t end;
    std::size_t depth;
  };
  std::vector<std::size_t> rows(row_indices);
  tree.nodes_.push_back({});
  std::vector<Item> stack{{0, 0, rows.size(), 0}};

  const std::size_t cols = data.cols();
  std::vector<std::vector<BinStat>> hist(cols);

  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();

    double g_total = 0.0;
    double h_total = 0.0;
    for (std::size_t k = item.begin; k < item.end; ++k) {
      g_total += grad[rows[k]];
      h_total += hess[rows[k]];
    }

    TreeNode& placeholder = tree.nodes_[static_cast<std::size_t>(item.node)];
    placeholder.leaf_value = leaf_weight(g_total, h_total, config.lambda);

    if (item.depth >= config.max_depth || item.end - item.begin < 2) continue;

    // Build per-feature histograms over this node's rows.
    for (std::size_t c = 0; c < cols; ++c) {
      hist[c].assign(data.feature(c).bin_count(), {});
    }
    for (std::size_t k = item.begin; k < item.end; ++k) {
      const std::size_t r = rows[k];
      const double g = grad[r];
      const double h = hess[r];
      for (std::size_t c = 0; c < cols; ++c) {
        BinStat& s = hist[c][data.at(r, c)];
        s.grad += g;
        s.hess += h;
      }
    }

    // Scan each feature left-to-right for the best split.
    BestSplit best;
    const double parent_score = score(g_total, h_total, config.lambda);
    for (std::size_t c = 0; c < cols; ++c) {
      double gl = 0.0;
      double hl = 0.0;
      const auto& col_hist = hist[c];
      for (std::size_t b = 0; b + 1 < col_hist.size(); ++b) {
        gl += col_hist[b].grad;
        hl += col_hist[b].hess;
        const double gr = g_total - gl;
        const double hr = h_total - hl;
        if (hl < config.min_child_weight || hr < config.min_child_weight) continue;
        const double gain =
            0.5 * (score(gl, hl, config.lambda) + score(gr, hr, config.lambda) -
                   parent_score) -
            config.gamma;
        if (gain > best.gain) {
          best = {gain, static_cast<int>(c), static_cast<std::uint16_t>(b)};
        }
      }
    }
    if (best.feature < 0) continue;  // no positive-gain split: stay a leaf

    // Partition this node's rows in place (stable not needed).
    const auto mid_it = std::partition(
        rows.begin() + static_cast<std::ptrdiff_t>(item.begin),
        rows.begin() + static_cast<std::ptrdiff_t>(item.end), [&](std::size_t r) {
          return data.at(r, static_cast<std::size_t>(best.feature)) <= best.bin;
        });
    const auto mid = static_cast<std::size_t>(mid_it - rows.begin());
    if (mid == item.begin || mid == item.end) continue;  // degenerate partition

    const int left_id = static_cast<int>(tree.nodes_.size());
    tree.nodes_.push_back({});
    const int right_id = static_cast<int>(tree.nodes_.size());
    tree.nodes_.push_back({});

    TreeNode& node = tree.nodes_[static_cast<std::size_t>(item.node)];
    node.feature = best.feature;
    node.split_bin = best.bin;
    node.split_value = data.feature(static_cast<std::size_t>(best.feature)).edge(best.bin);
    node.left = left_id;
    node.right = right_id;
    node.gain = best.gain;

    stack.push_back({left_id, item.begin, mid, item.depth + 1});
    stack.push_back({right_id, mid, item.end, item.depth + 1});
  }
  return tree;
}

double Tree::predict(const std::vector<double>& row) const {
  std::size_t node = 0;
  while (true) {
    const TreeNode& n = nodes_[node];
    if (n.feature < 0) return n.leaf_value;
    const double v = row[static_cast<std::size_t>(n.feature)];
    node = static_cast<std::size_t>(v <= n.split_value ? n.left : n.right);
  }
}

void Tree::add_importance(std::vector<double>& importance) const {
  for (const auto& n : nodes_) {
    if (n.feature >= 0) {
      const auto f = static_cast<std::size_t>(n.feature);
      if (f >= importance.size()) importance.resize(f + 1, 0.0);
      importance[f] += n.gain;
    }
  }
}

void Tree::save(std::ostream& os) const {
  os << nodes_.size() << '\n';
  for (const auto& n : nodes_) {
    os << n.feature << ' ' << n.split_value << ' ' << n.split_bin << ' ' << n.left
       << ' ' << n.right << ' ' << n.leaf_value << ' ' << n.gain << '\n';
  }
}

Tree Tree::load(std::istream& is) {
  // Hard cap on deserialised tree size: a depth-64 tree has at most 2^65
  // nodes on paper, but anything this repo trains is tiny — the cap exists so
  // a corrupt count cannot drive a multi-gigabyte allocation.
  constexpr std::size_t kMaxNodes = std::size_t{1} << 20;
  std::size_t count = 0;
  if (!(is >> count)) throw std::runtime_error("Tree::load: bad node count");
  if (count == 0 || count > kMaxNodes) {
    throw std::runtime_error("Tree::load: implausible node count");
  }
  Tree tree;
  tree.nodes_.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    TreeNode& n = tree.nodes_[i];
    if (!(is >> n.feature >> n.split_value >> n.split_bin >> n.left >> n.right >>
          n.leaf_value >> n.gain)) {
      throw std::runtime_error("Tree::load: truncated node list");
    }
    if (!std::isfinite(n.split_value) || !std::isfinite(n.leaf_value) ||
        !std::isfinite(n.gain)) {
      throw std::runtime_error("Tree::load: non-finite node field");
    }
    if (n.feature >= 0) {
      // grow() always appends children after their parent, so descending
      // into the tree strictly increases the node index — which is exactly
      // the property that makes predict() terminate.  Enforce it on load so
      // a crafted file cannot smuggle in a cycle or an out-of-range child.
      const auto left = static_cast<std::ptrdiff_t>(n.left);
      const auto right = static_cast<std::ptrdiff_t>(n.right);
      const auto self = static_cast<std::ptrdiff_t>(i);
      const auto limit = static_cast<std::ptrdiff_t>(count);
      if (left <= self || right <= self || left >= limit || right >= limit) {
        throw std::runtime_error("Tree::load: invalid child indices");
      }
    }
  }
  return tree;
}

}  // namespace trajkit::gbt
