// Gradient-boosted binary classifier (XGBoost-style).
//
// Logistic objective: per boosting round, gradients g = p - y and hessians
// h = p (1 - p) are computed from the current margin, a depth-limited tree is
// fitted to (g, h) on binned features (src/gbt/tree.hpp), and its prediction
// joins the ensemble scaled by the learning rate.
//
// Used in two roles in the reproduction: the motion-feature transfer
// classifier of Table I/II, and the RSSI-confidence detector of Sec. III-C
// (Table IV, Figs. 4-6).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/durable/artifact_store.hpp"
#include "common/expected.hpp"
#include "gbt/fused.hpp"
#include "gbt/tree.hpp"

namespace trajkit::gbt {

struct GbtConfig {
  std::size_t num_trees = 120;
  std::size_t max_depth = 4;
  double learning_rate = 0.1;
  std::size_t max_bins = 32;
  double lambda = 1.0;
  double gamma = 0.0;
  double min_child_weight = 1.0;
  double subsample = 1.0;  ///< row subsampling per round, (0, 1]
  std::uint64_t seed = 42;
};

class GbtClassifier {
 public:
  explicit GbtClassifier(GbtConfig config = {});

  const GbtConfig& config() const { return config_; }

  /// Fit on rows of X with labels y (1 = real, 0 = fake).
  /// `progress` (optional) receives (round, train_logloss).
  void train(const std::vector<std::vector<double>>& x, const std::vector<int>& y,
             const std::function<void(std::size_t, double)>& progress = {});

  /// P(label == 1) for one raw feature row.  Served by the fused flat-array
  /// scorer (gbt/fused.hpp) whenever the ensemble fits its encoding —
  /// bit-identical to the scalar tree walk, so callers never see the switch.
  double predict_proba(const std::vector<double>& row) const;
  int predict(const std::vector<double>& row, double threshold = 0.5) const;

  /// Scalar pointer-chasing walk — the oracle the fused scorer is asserted
  /// against (tests/benches); always available.
  double predict_proba_reference(const std::vector<double>& row) const;

  /// The fused scorer, if the ensemble encoded (null/invalid otherwise).
  const FusedForest* fused() const { return fused_.get(); }

  /// Total split gain per feature, normalised to sum to 1.
  std::vector<double> feature_importance(std::size_t num_features) const;

  std::size_t tree_count() const { return trees_.size(); }

  /// Text stream (de)serialisation.  save_file commits a CRC-framed durable
  /// container atomically (common/durable); load_file/try_load_file accept
  /// both that format and the original bare-text files (back-compat).
  void save(std::ostream& os) const;
  static GbtClassifier load(std::istream& is);
  void save_file(const std::string& path) const;
  static GbtClassifier load_file(const std::string& path);

  /// Non-throwing loaders: malformed input (bad magic, truncation, CRC
  /// mismatch, implausible config, invalid tree topology) comes back as a
  /// diagnostic string instead of an exception.
  static Expected<GbtClassifier, std::string> try_load(std::istream& is);
  static Expected<GbtClassifier, std::string> try_load_file(const std::string& path);

 private:
  /// Rebuild fused_ from trees_; called wherever the ensemble changes
  /// (train, load) so the serving path can rely on it without checks.
  void rebuild_fused();

  GbtConfig config_;
  std::vector<Tree> trees_;
  double base_score_ = 0.0;  ///< initial margin (log-odds of the label prior)
  // Shared, immutable: copies of a trained model share one fused image.
  std::shared_ptr<const FusedForest> fused_;
};

}  // namespace trajkit::gbt

namespace trajkit::durable {

/// Booster artifacts for ArtifactStore::open<GbtClassifier>/publish: the
/// payload is the classifier's own stream format (save/try_load).
template <>
struct ArtifactCodec<gbt::GbtClassifier> {
  using Value = gbt::GbtClassifier;
  static void encode(const gbt::GbtClassifier& value, std::ostream& os) {
    value.save(os);
  }
  static Expected<Value, std::string> decode(std::istream& is) {
    return gbt::GbtClassifier::try_load(is);
  }
};

}  // namespace trajkit::durable
