#include "gbt/binning.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace trajkit::gbt {

FeatureBins FeatureBins::fit(const std::vector<double>& column, std::size_t max_bins) {
  if (column.empty()) throw std::invalid_argument("FeatureBins::fit: empty column");
  if (max_bins < 2) throw std::invalid_argument("FeatureBins::fit: need >= 2 bins");
  for (double v : column) {
    if (std::isnan(v)) throw std::invalid_argument("FeatureBins::fit: NaN value");
  }
  std::vector<double> sorted(column);
  std::sort(sorted.begin(), sorted.end());

  FeatureBins fb;
  // Quantile edges on unique values; constant features get one catch-all bin.
  for (std::size_t b = 1; b < max_bins; ++b) {
    const double q = static_cast<double>(b) / static_cast<double>(max_bins);
    const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
    const double edge = sorted[idx];
    if (fb.edges_.empty() || edge > fb.edges_.back()) fb.edges_.push_back(edge);
  }
  fb.edges_.push_back(std::numeric_limits<double>::max());  // catch-all top bin
  return fb;
}

std::uint16_t FeatureBins::bin_of(double v) const {
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), v);
  const auto idx = static_cast<std::size_t>(it - edges_.begin());
  return static_cast<std::uint16_t>(std::min(idx, edges_.size() - 1));
}

BinnedMatrix BinnedMatrix::fit_transform(const std::vector<std::vector<double>>& x,
                                         std::size_t max_bins) {
  if (x.empty()) throw std::invalid_argument("BinnedMatrix: empty dataset");
  BinnedMatrix m;
  m.rows_ = x.size();
  m.cols_ = x.front().size();
  if (m.cols_ == 0) throw std::invalid_argument("BinnedMatrix: zero-width rows");
  for (const auto& row : x) {
    if (row.size() != m.cols_) {
      throw std::invalid_argument("BinnedMatrix: ragged rows");
    }
  }
  m.features_.reserve(m.cols_);
  std::vector<double> column(m.rows_);
  for (std::size_t c = 0; c < m.cols_; ++c) {
    for (std::size_t r = 0; r < m.rows_; ++r) column[r] = x[r][c];
    m.features_.push_back(FeatureBins::fit(column, max_bins));
  }
  m.bins_.resize(m.rows_ * m.cols_);
  for (std::size_t r = 0; r < m.rows_; ++r) {
    for (std::size_t c = 0; c < m.cols_; ++c) {
      m.bins_[r * m.cols_ + c] = m.features_[c].bin_of(x[r][c]);
    }
  }
  return m;
}

}  // namespace trajkit::gbt
