#include "gbt/fused.hpp"

#include <algorithm>
#include <limits>

#include "gbt/tree.hpp"

namespace trajkit::gbt {

FusedForest FusedForest::build(const std::vector<Tree>& trees,
                               double base_score, double learning_rate) {
  FusedForest f;
  f.base_score_ = base_score;
  f.lr_ = learning_rate;

  // Pass 1: the distinct threshold set per feature, exact double dedup.
  std::size_t num_features = 0;
  for (const Tree& tree : trees) {
    for (const TreeNode& n : tree.nodes()) {
      if (n.feature >= 0) {
        num_features =
            std::max(num_features, static_cast<std::size_t>(n.feature) + 1);
      }
    }
  }
  if (num_features > std::numeric_limits<std::uint16_t>::max()) return f;
  f.num_features_ = num_features;
  std::vector<std::vector<double>> per_feature(num_features);
  for (const Tree& tree : trees) {
    for (const TreeNode& n : tree.nodes()) {
      if (n.feature >= 0) {
        per_feature[static_cast<std::size_t>(n.feature)].push_back(n.split_value);
      }
    }
  }
  f.thr_offset_.assign(num_features + 1, 0);
  for (std::size_t c = 0; c < num_features; ++c) {
    auto& t = per_feature[c];
    std::sort(t.begin(), t.end());
    t.erase(std::unique(t.begin(), t.end()), t.end());
    if (t.size() > std::numeric_limits<std::uint16_t>::max()) return f;
    f.thr_offset_[c + 1] = f.thr_offset_[c] + static_cast<std::uint32_t>(t.size());
    f.thresholds_.insert(f.thresholds_.end(), t.begin(), t.end());
  }

  // Pass 2: flatten every tree, rewriting thresholds to ranks and folding
  // leaves into negative child slots.
  for (const Tree& tree : trees) {
    const auto& nodes = tree.nodes();
    if (nodes.empty()) return f;
    // Map source node index -> fused slot (internal) or ~leaf slot.
    std::vector<std::int32_t> slot(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].feature < 0) {
        slot[i] = ~static_cast<std::int32_t>(f.leaves_.size());
        f.leaves_.push_back(nodes[i].leaf_value);
      } else {
        slot[i] = static_cast<std::int32_t>(f.nodes_.size());
        f.nodes_.emplace_back();
      }
    }
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const TreeNode& n = nodes[i];
      if (n.feature < 0) continue;
      const std::size_t c = static_cast<std::size_t>(n.feature);
      const auto& t = per_feature[c];
      // Exact: split values were collected from these very nodes, so the
      // threshold is always present.
      const std::size_t rank =
          static_cast<std::size_t>(std::lower_bound(t.begin(), t.end(),
                                                    n.split_value) -
                                   t.begin());
      Node& out = f.nodes_[static_cast<std::size_t>(slot[i])];
      out.feature = static_cast<std::uint16_t>(c);
      out.rank = static_cast<std::uint16_t>(rank);
      // Tree::load enforces children-after-parent in range, so slot[] is
      // fully populated before any child reference is written.
      out.left = slot[static_cast<std::size_t>(n.left)];
      out.right = slot[static_cast<std::size_t>(n.right)];
    }
    f.roots_.push_back(slot[0]);
  }
  f.valid_ = true;
  return f;
}

double FusedForest::margin(const std::vector<double>& row) const {
  // Bin once: rank(v) = first index with threshold >= v, per feature.
  // 64 features covers every encoder in the repo; larger rows spill to heap.
  std::uint32_t bins_stack[64];
  std::vector<std::uint32_t> bins_heap;
  std::uint32_t* bins = bins_stack;
  if (num_features_ > 64) {
    bins_heap.resize(num_features_);
    bins = bins_heap.data();
  }
  for (std::size_t c = 0; c < num_features_; ++c) {
    const double* lo = thresholds_.data() + thr_offset_[c];
    const double* hi = thresholds_.data() + thr_offset_[c + 1];
    const double v = row[c];
    // NaN compares false against any threshold, so the reference walk always
    // goes right; an oversaturated bin reproduces that exactly.
    bins[c] = v == v
                  ? static_cast<std::uint32_t>(std::lower_bound(lo, hi, v) - lo)
                  : std::numeric_limits<std::uint32_t>::max();
  }

  // All trees, integer compares only, leaf sum in tree order (the reference
  // accumulation order — bit-identical to the scalar walk).
  double m = base_score_;
  const Node* nodes = nodes_.data();
  for (const std::int32_t root : roots_) {
    std::int32_t idx = root;
    while (idx >= 0) {
      const Node& n = nodes[idx];
      idx = bins[n.feature] <= n.rank ? n.left : n.right;
    }
    m += lr_ * leaves_[static_cast<std::size_t>(~idx)];
  }
  return m;
}

}  // namespace trajkit::gbt
