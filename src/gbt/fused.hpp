// Fused forest scorer: all trees walked over a pre-binned feature row.
//
// Tree::predict pointer-chases TreeNode structs and compares raw doubles at
// every node.  At serving rates that is one dependent cache-miss chain per
// tree plus a double compare per level.  The fused scorer does the float
// work once per *row* instead of once per *node*:
//
//  1. Build time: collect every distinct split threshold per feature across
//     the whole ensemble into one sorted array, and flatten all trees into a
//     single contiguous node array whose internal nodes hold the threshold's
//     *rank* (index in that feature's sorted list) instead of its value.
//     Leaves are folded into the child slots as negative indices into a
//     value array — traversal never branches on node kind.
//  2. Score time: bin the row once (one lower_bound per feature), then walk
//     every tree with pure integer compares over the flat array.
//
// Exactness: rank(v) is defined as the first index j with threshold[j] >= v,
// so  v <= t_j  <=>  rank(v) <= j  — an *exact* reformulation of the raw
// comparison, not an approximation.  Leaf values add in tree order starting
// from base_score, reproducing GbtClassifier::predict_proba's margin sum bit
// for bit.  The scalar walk stays in the booster as the oracle
// (predict_proba_reference) and the equivalence is asserted in tests.
//
// build() returns an invalid forest (valid() == false) instead of degrading
// silently when the ensemble does not fit the compact encoding (feature or
// rank beyond uint16) — callers keep the scalar path in that case.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace trajkit::gbt {

class Tree;

class FusedForest {
 public:
  FusedForest() = default;

  /// Flatten `trees` (scored in order with `learning_rate`, seeded from
  /// `base_score`).  Never throws: unencodable ensembles yield valid()==false.
  static FusedForest build(const std::vector<Tree>& trees, double base_score,
                           double learning_rate);

  bool valid() const { return valid_; }
  std::size_t tree_count() const { return roots_.size(); }
  /// Distinct thresholds kept for feature f (diagnostics / tests).
  std::size_t threshold_count(std::size_t f) const {
    return f + 1 < thr_offset_.size() ? thr_offset_[f + 1] - thr_offset_[f] : 0;
  }

  /// Pre-sigmoid ensemble margin for one raw feature row; bit-identical to
  /// base_score + sum_t lr * tree[t].predict(row).  `row` must cover every
  /// feature the ensemble splits on.
  double margin(const std::vector<double>& row) const;

 private:
  /// Internal node: go left iff bins[feature] <= rank.  A negative child is
  /// ~index into leaves_.
  struct Node {
    std::uint16_t feature = 0;
    std::uint16_t rank = 0;
    std::int32_t left = 0;
    std::int32_t right = 0;
  };

  bool valid_ = false;
  double base_score_ = 0.0;
  double lr_ = 0.0;
  std::size_t num_features_ = 0;
  std::vector<Node> nodes_;
  std::vector<double> leaves_;
  std::vector<std::int32_t> roots_;        ///< per tree: node index or ~leaf
  std::vector<double> thresholds_;         ///< per-feature ascending, concatenated
  std::vector<std::uint32_t> thr_offset_;  ///< num_features_ + 1 entries
};

}  // namespace trajkit::gbt
