#include "gbt/booster.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "common/durable/durable_file.hpp"
#include "common/rng.hpp"

namespace trajkit::gbt {
namespace {

constexpr const char* kDurableTag = "gbt_classifier";
constexpr std::uint32_t kDurableVersion = 1;
constexpr std::size_t kMaxTrees = std::size_t{1} << 20;

double sigmoid(double x) {
  if (x >= 0.0) return 1.0 / (1.0 + std::exp(-x));
  const double e = std::exp(x);
  return e / (1.0 + e);
}

}  // namespace

GbtClassifier::GbtClassifier(GbtConfig config) : config_(config) {
  if (config_.subsample <= 0.0 || config_.subsample > 1.0) {
    throw std::invalid_argument("GbtClassifier: subsample must be in (0, 1]");
  }
  if (config_.num_trees == 0) {
    throw std::invalid_argument("GbtClassifier: need at least one tree");
  }
}

void GbtClassifier::train(const std::vector<std::vector<double>>& x,
                          const std::vector<int>& y,
                          const std::function<void(std::size_t, double)>& progress) {
  if (x.size() != y.size() || x.empty()) {
    throw std::invalid_argument("GbtClassifier::train: bad dataset");
  }
  trees_.clear();

  const BinnedMatrix binned = BinnedMatrix::fit_transform(x, config_.max_bins);
  const std::size_t n = x.size();

  // Start from the prior log-odds, clamped away from degenerate datasets.
  const double positives = static_cast<double>(std::accumulate(y.begin(), y.end(), 0));
  const double prior = std::clamp(positives / static_cast<double>(n), 1e-6, 1.0 - 1e-6);
  base_score_ = std::log(prior / (1.0 - prior));

  std::vector<double> margin(n, base_score_);
  std::vector<double> grad(n);
  std::vector<double> hess(n);
  Rng rng(config_.seed);

  TreeConfig tree_cfg{config_.max_depth, config_.lambda, config_.gamma,
                      config_.min_child_weight};

  for (std::size_t round = 0; round < config_.num_trees; ++round) {
    double logloss = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double p = sigmoid(margin[i]);
      const double label = y[i] ? 1.0 : 0.0;
      grad[i] = p - label;
      hess[i] = std::max(p * (1.0 - p), 1e-12);
      logloss -= label * std::log(std::max(p, 1e-12)) +
                 (1.0 - label) * std::log(std::max(1.0 - p, 1e-12));
    }
    logloss /= static_cast<double>(n);

    std::vector<std::size_t> rows;
    rows.reserve(n);
    if (config_.subsample >= 1.0) {
      rows.resize(n);
      std::iota(rows.begin(), rows.end(), 0);
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        if (rng.chance(config_.subsample)) rows.push_back(i);
      }
      if (rows.empty()) rows.push_back(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
    }

    Tree tree = Tree::grow(binned, grad, hess, rows, tree_cfg);
    for (std::size_t i = 0; i < n; ++i) {
      margin[i] += config_.learning_rate * tree.predict(x[i]);
    }
    trees_.push_back(std::move(tree));
    if (progress) progress(round, logloss);
  }
  rebuild_fused();
}

void GbtClassifier::rebuild_fused() {
  fused_ = std::make_shared<const FusedForest>(
      FusedForest::build(trees_, base_score_, config_.learning_rate));
}

double GbtClassifier::predict_proba(const std::vector<double>& row) const {
  if (fused_ && fused_->valid()) return sigmoid(fused_->margin(row));
  return predict_proba_reference(row);
}

double GbtClassifier::predict_proba_reference(const std::vector<double>& row) const {
  double margin = base_score_;
  for (const auto& tree : trees_) margin += config_.learning_rate * tree.predict(row);
  return sigmoid(margin);
}

int GbtClassifier::predict(const std::vector<double>& row, double threshold) const {
  return predict_proba(row) >= threshold ? 1 : 0;
}

std::vector<double> GbtClassifier::feature_importance(std::size_t num_features) const {
  std::vector<double> importance(num_features, 0.0);
  for (const auto& tree : trees_) tree.add_importance(importance);
  const double total = std::accumulate(importance.begin(), importance.end(), 0.0);
  if (total > 0.0) {
    for (auto& v : importance) v /= total;
  }
  return importance;
}

void GbtClassifier::save(std::ostream& os) const {
  os << "trajkit_gbt_v1\n";
  os.precision(17);
  os << config_.num_trees << ' ' << config_.max_depth << ' ' << config_.learning_rate
     << ' ' << config_.max_bins << ' ' << config_.lambda << ' ' << config_.gamma << ' '
     << config_.min_child_weight << ' ' << config_.subsample << ' ' << config_.seed
     << '\n';
  os << base_score_ << ' ' << trees_.size() << '\n';
  for (const auto& tree : trees_) tree.save(os);
}

Expected<GbtClassifier, std::string> GbtClassifier::try_load(std::istream& is) {
  using Result = Expected<GbtClassifier, std::string>;
  std::string magic;
  if (!(is >> magic) || magic != "trajkit_gbt_v1") {
    return Result::failure("gbt load: bad magic");
  }
  GbtConfig cfg;
  if (!(is >> cfg.num_trees >> cfg.max_depth >> cfg.learning_rate >> cfg.max_bins >>
        cfg.lambda >> cfg.gamma >> cfg.min_child_weight >> cfg.subsample >> cfg.seed)) {
    return Result::failure("gbt load: bad config");
  }
  if (cfg.num_trees == 0 || cfg.num_trees > kMaxTrees || cfg.max_depth > 64 ||
      cfg.max_bins < 2 || cfg.max_bins > 65536 ||
      !std::isfinite(cfg.learning_rate) || !std::isfinite(cfg.lambda) ||
      !std::isfinite(cfg.gamma) || !std::isfinite(cfg.min_child_weight) ||
      !(cfg.subsample > 0.0 && cfg.subsample <= 1.0)) {
    return Result::failure("gbt load: implausible config");
  }
  try {
    GbtClassifier model(cfg);
    std::size_t tree_count = 0;
    if (!(is >> model.base_score_ >> tree_count)) {
      return Result::failure("gbt load: bad header");
    }
    if (!std::isfinite(model.base_score_) || tree_count > kMaxTrees) {
      return Result::failure("gbt load: implausible ensemble header");
    }
    model.trees_.reserve(tree_count);
    for (std::size_t i = 0; i < tree_count; ++i) {
      model.trees_.push_back(Tree::load(is));
    }
    model.rebuild_fused();
    return Result(std::move(model));
  } catch (const std::exception& e) {
    return Result::failure(std::string("gbt load: ") + e.what());
  }
}

GbtClassifier GbtClassifier::load(std::istream& is) {
  auto result = try_load(is);
  if (!result) throw std::runtime_error(result.error());
  return std::move(result).value();
}

void GbtClassifier::save_file(const std::string& path) const {
  std::ostringstream payload;
  save(payload);
  durable::DurableWriter writer(kDurableTag, kDurableVersion);
  writer.add_record(payload.str());
  auto committed = writer.commit(path);
  if (!committed) {
    throw std::runtime_error("GbtClassifier::save_file: " + committed.error());
  }
}

Expected<GbtClassifier, std::string> GbtClassifier::try_load_file(
    const std::string& path) {
  using Result = Expected<GbtClassifier, std::string>;
  if (durable::file_has_durable_magic(path)) {
    auto contents = durable::read_durable_file(path, kDurableTag);
    if (!contents) return Result::failure("gbt load: " + contents.error());
    if (contents.value().records.size() != 1) {
      return Result::failure("gbt load: unexpected record count");
    }
    std::istringstream is(contents.value().records[0]);
    return try_load(is);
  }
  // Back-compat: pre-durable bare-text model files.
  std::ifstream is(path);
  if (!is) return Result::failure("gbt load: cannot open " + path);
  return try_load(is);
}

GbtClassifier GbtClassifier::load_file(const std::string& path) {
  auto result = try_load_file(path);
  if (!result) throw std::runtime_error(result.error());
  return std::move(result).value();
}

}  // namespace trajkit::gbt
