#include "common/cli.hpp"

#include <stdexcept>

#include "common/parallel.hpp"

namespace trajkit {

CliFlags::CliFlags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("expected --key=value argument, got: " + arg);
    }
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg.substr(2)] = "true";  // bare flag == boolean true
    } else {
      values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  if (has("threads")) {
    const std::int64_t n = get_int("threads", 0);
    if (n < 0) throw std::invalid_argument("--threads must be >= 0");
    set_global_threads(static_cast<std::size_t>(n));
  }
}

bool CliFlags::has(const std::string& key) const { return values_.count(key) > 0; }

std::string CliFlags::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliFlags::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stoll(it->second);
}

double CliFlags::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stod(it->second);
}

bool CliFlags::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace trajkit
