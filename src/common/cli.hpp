// Minimal command-line flag parser for the benchmark binaries.
//
// Every bench accepts `--key=value` overrides for its scaling knobs so that
// the paper-scale experiment can be re-run on a bigger machine:
//   bench_table1_naive_classifiers --train=20000 --epochs=100 --hidden=256
//
// The parser also owns one global knob: `--threads=N` configures the
// process-wide thread pool (common/parallel.hpp) for every binary that
// parses its arguments through CliFlags.  `--threads=1` forces the serial
// path; omitting the flag defers to the TRAJKIT_THREADS environment
// variable, then to hardware_concurrency().  Results are identical for any
// value (see DESIGN.md, "Threading & determinism").
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace trajkit {

/// Parsed `--key=value` flags; unknown positional arguments are rejected.
class CliFlags {
 public:
  /// Parse argv; throws std::invalid_argument on a malformed argument.
  CliFlags(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace trajkit
