// Crash-safe file persistence: atomic replace + CRC-framed record container.
//
// Every artifact trajkit persists (trained detectors, LSTM/GBT models, RPD
// store snapshots) historically went through a bare ofstream — a crash
// mid-save left a torn file that the loaders would happily parse into
// garbage.  This layer gives every saver the same two guarantees:
//
//   * **Atomicity** — write_file_atomic() writes `path + ".tmp"`, fsyncs it,
//     rename(2)s it over `path` and fsyncs the directory.  A reader (or a
//     restart) observes either the complete old file or the complete new one,
//     never a hybrid; POSIX rename is atomic on a single filesystem.
//   * **Integrity** — DurableWriter frames payload records with a per-record
//     CRC-32 and closes the file with a footer carrying a whole-file CRC.
//     read_durable_file() re-validates everything and returns Expected
//     errors for truncation, bad magic, wrong tag, version skew and CRC
//     mismatch — a corrupt artifact is a diagnosable load failure, never
//     silently consumed.
//
// Frame layout (all integers native little-endian, this repo targets one
// architecture):
//
//   "TKDURB1\n"            8-byte magic
//   u32 tag_len, tag       format tag, e.g. "rssi_detector"
//   u32 version            format-specific version
//   u32 record_count
//   per record:            u64 payload_len, u32 crc32(payload), payload
//   "TKEN"                 4-byte footer magic
//   u32 crc32(everything before the footer magic)
//
// The write path is instrumented with common/fault points (kFaultPoints
// below).  Armed with FaultAction::kCrash they _exit() the process at that
// exact byte position, which is how tests/crash_recovery_test.cpp proves the
// pre-image/post-image guarantee at every step; armed with kFail they report
// an Expected error after leaving the same on-disk state behind.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/expected.hpp"

namespace trajkit::durable {

/// Fault/crash points of the atomic write path, in execution order.  A crash
/// at any point up to and including kFaultRename leaves the previous file
/// intact; a crash at kFaultDirSync (after the rename) leaves the new one.
inline constexpr const char* kFaultOpenTmp = "durable.open_tmp";
inline constexpr const char* kFaultWritePartial = "durable.write_partial";
inline constexpr const char* kFaultSyncTmp = "durable.sync_tmp";
inline constexpr const char* kFaultRename = "durable.rename";
inline constexpr const char* kFaultDirSync = "durable.sync_dir";

/// Every fault point on the atomic write path, for harnesses that iterate
/// the full crash matrix.
inline constexpr const char* kAtomicWritePoints[] = {
    kFaultOpenTmp, kFaultWritePartial, kFaultSyncTmp, kFaultRename, kFaultDirSync,
};

/// Upper bound on records in one framed container.  Enforced at write time
/// by DurableWriter::commit and re-checked on parse (together with a
/// bytes-based plausibility bound), so a writer can never commit a file the
/// reader would refuse.  Sized to cover the largest producer — the crowd
/// store snapshot (kMaxSnapshotPoints reference points plus a meta record),
/// which static_asserts against this constant.
inline constexpr std::size_t kMaxDurableRecords = std::size_t{1} << 23;

/// Atomically replace `path` with `content` (temp file + fsync + rename +
/// directory fsync).  On failure the previous file is untouched and the temp
/// file is removed.  Single-writer per path: concurrent writers would race on
/// the same temp name.
Expected<bool, std::string> write_file_atomic(const std::string& path,
                                              std::string_view content);

/// Remove a stale `path + ".tmp"` left behind by a crash between open and
/// rename inside write_file_atomic.  Recovery-time hygiene for owners of a
/// path's lifecycle (Journal::open, CrowdStore::open); missing temp files
/// are not an error.
void remove_stale_tmp(const std::string& path);

/// Slurp a whole file; error on open/read failure (never on content).
Expected<std::string, std::string> read_file(const std::string& path);

/// The parsed body of a framed durable file.
struct DurableContents {
  std::uint32_t version = 0;
  std::vector<std::string> records;
};

/// Accumulates records, then commits them as one framed file, atomically.
class DurableWriter {
 public:
  DurableWriter(std::string tag, std::uint32_t version);

  void add_record(std::string_view payload);

  /// The framed byte image (magic..footer) — what commit() writes.
  std::string bytes() const;

  /// Atomic write of bytes() to `path` via write_file_atomic.
  Expected<bool, std::string> commit(const std::string& path) const;

 private:
  std::string tag_;
  std::uint32_t version_;
  std::vector<std::string> records_;
};

/// Parse and fully validate a framed image; `tag` must match the writer's.
Expected<DurableContents, std::string> parse_durable(std::string_view bytes,
                                                     std::string_view tag);

/// read_file + parse_durable.
Expected<DurableContents, std::string> read_durable_file(const std::string& path,
                                                         std::string_view tag);

/// True when `path` exists and starts with the durable magic — the
/// back-compat dispatch used by loaders that still accept pre-durable
/// (bare text) artifacts.
bool file_has_durable_magic(const std::string& path);

/// FNV-1a of a path, the key under which the write path's fault points are
/// consulted (matches the hashing detector_io already uses).
std::uint64_t path_fault_key(std::string_view path);

}  // namespace trajkit::durable
