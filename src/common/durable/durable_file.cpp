#include "common/durable/durable_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/durable/crc32.hpp"
#include "common/fault.hpp"

namespace trajkit::durable {
namespace {

constexpr char kMagic[8] = {'T', 'K', 'D', 'U', 'R', 'B', '1', '\n'};
constexpr char kFooterMagic[4] = {'T', 'K', 'E', 'N'};
constexpr std::size_t kMaxTagLen = 256;
/// Smallest possible on-disk footprint of one record: u64 length + u32 CRC
/// with an empty payload.  Bounds how many records a file of a given size
/// can plausibly claim.
constexpr std::size_t kMinRecordBytes = 12;

void append_u32(std::string& out, std::uint32_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

/// Bounds-checked cursor over an immutable byte image; every read_* returns
/// false on exhaustion instead of walking past the end.
struct Cursor {
  std::string_view data;
  std::size_t pos = 0;

  std::size_t remaining() const { return data.size() - pos; }

  bool read_bytes(void* out, std::size_t n) {
    if (remaining() < n) return false;
    std::memcpy(out, data.data() + pos, n);
    pos += n;
    return true;
  }
  bool read_u32(std::uint32_t& out) { return read_bytes(&out, sizeof out); }
  bool read_u64(std::uint64_t& out) { return read_bytes(&out, sizeof out); }
  bool read_view(std::string_view& out, std::size_t n) {
    if (remaining() < n) return false;
    out = data.substr(pos, n);
    pos += n;
    return true;
  }
};

std::string errno_string() { return std::strerror(errno); }

/// Write the full buffer, retrying on short writes/EINTR.
bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// fsync the directory containing `path` so the rename itself is durable.
bool sync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

using WriteResult = Expected<bool, std::string>;

WriteResult fail_cleanup(const std::string& tmp, std::string message) {
  ::unlink(tmp.c_str());
  return WriteResult::failure(std::move(message));
}

}  // namespace

std::uint64_t path_fault_key(std::string_view path) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : path) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

Expected<bool, std::string> write_file_atomic(const std::string& path,
                                              std::string_view content) {
  auto& faults = global_faults();
  const std::uint64_t key = path_fault_key(path);
  const std::string tmp = path + ".tmp";

  if (faults.should_fail_seq(kFaultOpenTmp, key)) {
    return WriteResult::failure("atomic write: injected fault before open");
  }
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return WriteResult::failure("atomic write: cannot open " + tmp + ": " +
                                errno_string());
  }
  // Two half-writes with a fault point in between, so the crash harness can
  // leave a genuinely torn temp file behind (the target is still untouched).
  const std::size_t half = content.size() / 2;
  if (!write_all(fd, content.data(), half)) {
    ::close(fd);
    return fail_cleanup(tmp, "atomic write: short write to " + tmp);
  }
  if (faults.should_fail_seq(kFaultWritePartial, key)) {
    ::close(fd);
    return fail_cleanup(tmp, "atomic write: injected fault mid-write");
  }
  if (!write_all(fd, content.data() + half, content.size() - half)) {
    ::close(fd);
    return fail_cleanup(tmp, "atomic write: short write to " + tmp);
  }
  if (faults.should_fail_seq(kFaultSyncTmp, key)) {
    ::close(fd);
    return fail_cleanup(tmp, "atomic write: injected fault before fsync");
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return fail_cleanup(tmp, "atomic write: fsync failed: " + errno_string());
  }
  ::close(fd);
  if (faults.should_fail_seq(kFaultRename, key)) {
    return fail_cleanup(tmp, "atomic write: injected fault before rename");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return fail_cleanup(tmp, "atomic write: rename to " + path + " failed: " +
                                  errno_string());
  }
  // From here the new file is in place; a failure below only weakens
  // durability of the *rename* (fine after a process crash, visible only
  // after a power loss), so the fault point models "crash after commit".
  if (faults.should_fail_seq(kFaultDirSync, key)) {
    return WriteResult::failure("atomic write: injected fault before dir sync");
  }
  if (!sync_parent_dir(path)) {
    return WriteResult::failure("atomic write: directory fsync failed: " +
                                errno_string());
  }
  return WriteResult(true);
}

void remove_stale_tmp(const std::string& path) {
  ::unlink((path + ".tmp").c_str());
}

Expected<std::string, std::string> read_file(const std::string& path) {
  using Result = Expected<std::string, std::string>;
  std::ifstream is(path, std::ios::binary);
  if (!is) return Result::failure("cannot open " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  if (is.bad()) return Result::failure("read error on " + path);
  return Result(std::move(buf).str());
}

DurableWriter::DurableWriter(std::string tag, std::uint32_t version)
    : tag_(std::move(tag)), version_(version) {}

void DurableWriter::add_record(std::string_view payload) {
  records_.emplace_back(payload);
}

std::string DurableWriter::bytes() const {
  std::string out;
  std::size_t payload_total = 0;
  for (const auto& r : records_) payload_total += r.size();
  out.reserve(payload_total + 64 + tag_.size() + records_.size() * 12);
  out.append(kMagic, sizeof kMagic);
  append_u32(out, static_cast<std::uint32_t>(tag_.size()));
  out += tag_;
  append_u32(out, version_);
  append_u32(out, static_cast<std::uint32_t>(records_.size()));
  for (const auto& r : records_) {
    append_u64(out, r.size());
    append_u32(out, crc32(r));
    out += r;
  }
  const std::uint32_t file_crc = crc32(out);
  out.append(kFooterMagic, sizeof kFooterMagic);
  append_u32(out, file_crc);
  return out;
}

Expected<bool, std::string> DurableWriter::commit(const std::string& path) const {
  // Refuse to commit what parse_durable would refuse to read: past the record
  // cap the file would be unloadable, which for a store snapshot means a
  // store that compacts once and can never be reopened.
  if (records_.size() > kMaxDurableRecords) {
    return WriteResult::failure(
        "durable: record count " + std::to_string(records_.size()) +
        " exceeds the cap of " + std::to_string(kMaxDurableRecords) +
        " for " + path);
  }
  return write_file_atomic(path, bytes());
}

Expected<DurableContents, std::string> parse_durable(std::string_view bytes,
                                                     std::string_view tag) {
  using Result = Expected<DurableContents, std::string>;
  Cursor cur{bytes};
  char magic[sizeof kMagic];
  if (!cur.read_bytes(magic, sizeof magic) ||
      std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    return Result::failure("durable: bad magic (not a durable file)");
  }
  std::uint32_t tag_len = 0;
  if (!cur.read_u32(tag_len) || tag_len > kMaxTagLen) {
    return Result::failure("durable: bad tag length");
  }
  std::string_view file_tag;
  if (!cur.read_view(file_tag, tag_len)) {
    return Result::failure("durable: truncated tag");
  }
  if (file_tag != tag) {
    return Result::failure("durable: tag mismatch (file is '" +
                           std::string(file_tag) + "', expected '" +
                           std::string(tag) + "')");
  }
  DurableContents contents;
  std::uint32_t record_count = 0;
  if (!cur.read_u32(contents.version) || !cur.read_u32(record_count)) {
    return Result::failure("durable: truncated header");
  }
  // Two plausibility bounds before reserving anything: the global cap the
  // writer enforces, and what the remaining bytes could physically hold.
  if (record_count > kMaxDurableRecords ||
      record_count > cur.remaining() / kMinRecordBytes) {
    return Result::failure("durable: implausible record count");
  }
  contents.records.reserve(record_count);
  for (std::uint32_t i = 0; i < record_count; ++i) {
    std::uint64_t len = 0;
    std::uint32_t crc = 0;
    if (!cur.read_u64(len) || !cur.read_u32(crc)) {
      return Result::failure("durable: truncated record header " + std::to_string(i));
    }
    if (len > cur.remaining()) {
      return Result::failure("durable: truncated record " + std::to_string(i));
    }
    std::string_view payload;
    cur.read_view(payload, static_cast<std::size_t>(len));
    if (crc32(payload) != crc) {
      return Result::failure("durable: CRC mismatch in record " + std::to_string(i));
    }
    contents.records.emplace_back(payload);
  }
  const std::size_t body_end = cur.pos;
  char footer[sizeof kFooterMagic];
  std::uint32_t file_crc = 0;
  if (!cur.read_bytes(footer, sizeof footer) || !cur.read_u32(file_crc) ||
      std::memcmp(footer, kFooterMagic, sizeof kFooterMagic) != 0) {
    return Result::failure("durable: missing footer (truncated file)");
  }
  if (cur.remaining() != 0) {
    return Result::failure("durable: trailing bytes after footer");
  }
  if (crc32(bytes.substr(0, body_end)) != file_crc) {
    return Result::failure("durable: file CRC mismatch");
  }
  return Result(std::move(contents));
}

Expected<DurableContents, std::string> read_durable_file(const std::string& path,
                                                         std::string_view tag) {
  using Result = Expected<DurableContents, std::string>;
  auto raw = read_file(path);
  if (!raw) return Result::failure("durable: " + raw.error());
  return parse_durable(raw.value(), tag);
}

bool file_has_durable_magic(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  char magic[sizeof kMagic];
  is.read(magic, sizeof magic);
  return is.gcount() == sizeof magic &&
         std::memcmp(magic, kMagic, sizeof kMagic) == 0;
}

}  // namespace trajkit::durable
