// Versioned artifact store: epoch-numbered model/data snapshots behind one
// Expected-based load/publish API.
//
// Before this layer existed, every persisted model had its own ad-hoc file
// surface — RssiDetector::try_load_file, LstmClassifier::try_load_file, the
// gbt::GbtClassifier readers — each dispatching on its own magic, and every
// deployment overwrote the single live file in place.  A serving process that
// wants to republish a retrained model without dropping requests needs more:
// old epochs must stay readable while in-flight work finishes on them, and
// the "which epoch is live" decision must itself be crash-safe.
//
// The store keeps every published artifact under
//
//   dir/<kind>.<epoch>       one CRC-framed durable container per publish
//   dir/CURRENT              durable pointer: one "kind epoch" line per kind
//
// publish() commits the artifact file first (atomic temp+fsync+rename via
// common/durable), then flips CURRENT — also atomically.  A crash between
// the two stages leaves a fully-written orphan artifact and a CURRENT that
// still names the previous epoch: reopening serves the old epoch, exactly as
// if the publish never happened, and the next publish picks a strictly
// larger epoch than any file on disk (orphans included), so epochs are
// monotone across crashes.  The gap is an explicit fault/crash point
// (kFaultPublishCurrent) that tests/hotswap_test.cpp walks with the fork
// harness.
//
// Typed access goes through ArtifactCodec<T>: each persistable type
// specialises the codec next to its own declaration (wifi/detector.hpp,
// gbt/booster.hpp, nn/classifier.hpp), and ArtifactStore::open<T>(kind,
// epoch) / publish<T>(kind, value) do the framing, epoch resolution and
// error plumbing once, for every model family.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/expected.hpp"

namespace trajkit::durable {

/// Fault/crash point between an artifact file commit and the CURRENT flip,
/// keyed by path_fault_key of the CURRENT file.  A crash here is the
/// "published but not yet live" state the recovery tests aim at.
inline constexpr const char* kFaultPublishCurrent = "artifact.publish_current";

/// Typed (de)serialisation hooks for ArtifactStore::open<T>/publish<T>.
/// Specialise next to T's declaration with:
///
///   using Value = ...;   // what open<T> yields (T, or unique_ptr<T> for
///                        // non-movable types)
///   static void encode(const T& value, std::ostream& os);
///   static Expected<Value, std::string> decode(std::istream& is);
template <typename T>
struct ArtifactCodec;

class ArtifactStore {
 public:
  /// Resolve "the epoch CURRENT names" in open<T>/read_payload.
  static constexpr std::uint64_t kCurrentEpoch = 0;

  /// Open (creating if needed) the store rooted at directory `dir` and load
  /// the CURRENT pointer.  A missing CURRENT is a fresh store, not an error.
  static Expected<std::unique_ptr<ArtifactStore>, std::string> open_dir(
      const std::string& dir);

  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  /// Commit `payload` as the next epoch of `kind` and flip CURRENT to it.
  /// Returns the epoch it was published under (monotonically increasing per
  /// kind, strictly above every artifact file on disk — crash orphans
  /// included).
  Expected<std::uint64_t, std::string> publish_payload(const std::string& kind,
                                                       std::string_view payload);

  /// Read one epoch's payload back (kCurrentEpoch = whatever CURRENT names).
  Expected<std::string, std::string> read_payload(const std::string& kind,
                                                  std::uint64_t epoch) const;

  /// Epoch CURRENT names for `kind`; 0 when the kind was never published.
  std::uint64_t current_epoch(const std::string& kind) const;

  /// Every kind CURRENT names, with its live epoch (deterministic order).
  const std::map<std::string, std::uint64_t>& current() const { return current_; }

  /// Typed publish: encode through ArtifactCodec<T>, then publish_payload.
  template <typename T>
  Expected<std::uint64_t, std::string> publish(const std::string& kind,
                                               const T& value) {
    std::ostringstream os;
    ArtifactCodec<T>::encode(value, os);
    return publish_payload(kind, os.str());
  }

  /// Typed load: the one Expected-based read surface for every persisted
  /// model family.  `epoch` = kCurrentEpoch follows the durable CURRENT
  /// pointer; an explicit epoch pins an older (still readable) publish.
  template <typename T>
  Expected<typename ArtifactCodec<T>::Value, std::string> open(
      const std::string& kind, std::uint64_t epoch = kCurrentEpoch) const {
    using Result = Expected<typename ArtifactCodec<T>::Value, std::string>;
    auto payload = read_payload(kind, epoch);
    if (!payload) return Result::failure(payload.error());
    std::istringstream is(payload.value());
    return ArtifactCodec<T>::decode(is);
  }

  /// On-disk path of one epoch's artifact file.
  std::string artifact_path(const std::string& kind, std::uint64_t epoch) const;
  static std::string current_path(const std::string& dir);
  const std::string& dir() const { return dir_; }

 private:
  explicit ArtifactStore(std::string dir) : dir_(std::move(dir)) {}

  Expected<bool, std::string> write_current() const;

  std::string dir_;
  std::map<std::string, std::uint64_t> current_;
};

}  // namespace trajkit::durable
