#include "common/durable/artifact_store.hpp"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

#include "common/durable/durable_file.hpp"
#include "common/fault.hpp"

namespace trajkit::durable {
namespace {

constexpr const char* kArtifactTag = "artifact";
constexpr std::uint32_t kArtifactVersion = 1;
constexpr const char* kCurrentTag = "artifact_current";
constexpr std::uint32_t kCurrentVersion = 1;

/// Kinds become file-name stems; keep them boring so a hostile kind cannot
/// escape the store directory or collide with CURRENT.
bool valid_kind(const std::string& kind) {
  if (kind.empty() || kind.size() > 64) return false;
  for (const char c : kind) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

bool path_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

/// Highest "<kind>.<epoch>" epoch present in `dir`, 0 when none.  A directory
/// scan rather than sequential probing: orphans are normally contiguous above
/// CURRENT, but a CURRENT restored from an older backup can leave arbitrary
/// gaps, and a publish must never land below (and later shadow) any of them.
std::uint64_t max_epoch_on_disk(const std::string& dir, const std::string& kind) {
  std::uint64_t max_epoch = 0;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return 0;
  const std::string prefix = kind + '.';
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    std::uint64_t epoch = 0;
    bool numeric = true;
    for (std::size_t i = prefix.size(); i < name.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') { numeric = false; break; }
      epoch = epoch * 10 + static_cast<std::uint64_t>(name[i] - '0');
    }
    if (numeric && epoch > max_epoch) max_epoch = epoch;
  }
  ::closedir(d);
  return max_epoch;
}

/// Reclaim stale "<kind>.<epoch>.tmp" files a crash inside DurableWriter's
/// atomic commit left behind.  remove_stale_tmp() can only clean paths it is
/// told about, and the epoch of an interrupted publish is unknowable after a
/// restart — so open scans the directory once and unlinks every temp whose
/// stem parses as a valid artifact name.  Only that exact shape is touched:
/// anything else ending in .tmp is not ours to delete.
void reclaim_stale_artifact_tmp(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  std::vector<std::string> stale;
  const std::string suffix = ".tmp";
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    const std::string stem = name.substr(0, name.size() - suffix.size());
    const std::size_t dot = stem.rfind('.');
    if (dot == std::string::npos || dot == 0 || dot + 1 >= stem.size()) continue;
    if (!valid_kind(stem.substr(0, dot))) continue;
    bool numeric = true;
    for (std::size_t i = dot + 1; i < stem.size(); ++i) {
      if (stem[i] < '0' || stem[i] > '9') { numeric = false; break; }
    }
    if (!numeric) continue;
    stale.push_back(dir + "/" + name);
  }
  ::closedir(d);
  for (const std::string& path : stale) ::unlink(path.c_str());
}

}  // namespace

std::string ArtifactStore::current_path(const std::string& dir) {
  return dir + "/CURRENT";
}

std::string ArtifactStore::artifact_path(const std::string& kind,
                                         std::uint64_t epoch) const {
  return dir_ + "/" + kind + "." + std::to_string(epoch);
}

Expected<std::unique_ptr<ArtifactStore>, std::string> ArtifactStore::open_dir(
    const std::string& dir) {
  using Result = Expected<std::unique_ptr<ArtifactStore>, std::string>;
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Result::failure("artifact store: cannot create " + dir + ": " +
                           std::strerror(errno));
  }
  std::unique_ptr<ArtifactStore> store(new ArtifactStore(dir));
  // A crash inside a previous publish can strand temp files for either the
  // artifact being written or the CURRENT flip.
  remove_stale_tmp(current_path(dir));
  reclaim_stale_artifact_tmp(dir);

  const std::string cur = current_path(dir);
  if (!path_exists(cur)) return Result(std::move(store));  // fresh store
  auto contents = read_durable_file(cur, kCurrentTag);
  if (!contents) return Result::failure("artifact store: " + contents.error());
  for (const auto& record : contents.value().records) {
    std::istringstream is(record);
    std::string kind;
    std::uint64_t epoch = 0;
    if (!(is >> kind >> epoch) || !valid_kind(kind) || epoch == 0) {
      return Result::failure("artifact store: bad CURRENT record '" + record + "'");
    }
    store->current_[kind] = epoch;
  }
  return Result(std::move(store));
}

Expected<bool, std::string> ArtifactStore::write_current() const {
  DurableWriter writer(kCurrentTag, kCurrentVersion);
  for (const auto& [kind, epoch] : current_) {
    writer.add_record(kind + ' ' + std::to_string(epoch));
  }
  return writer.commit(current_path(dir_));
}

Expected<std::uint64_t, std::string> ArtifactStore::publish_payload(
    const std::string& kind, std::string_view payload) {
  using Result = Expected<std::uint64_t, std::string>;
  if (!valid_kind(kind)) {
    return Result::failure("artifact store: invalid kind '" + kind + "'");
  }

  // Next epoch: strictly above CURRENT *and* above any orphan artifact a
  // crashed publish left behind, so a re-publish after recovery can never
  // reuse (and silently shadow) an epoch number.
  const std::uint64_t on_disk = max_epoch_on_disk(dir_, kind);
  std::uint64_t epoch = std::max(current_epoch(kind), on_disk) + 1;
  while (path_exists(artifact_path(kind, epoch))) ++epoch;

  // Stage 1: commit the artifact file itself.  Atomic; a crash leaves either
  // nothing or a complete file that CURRENT does not name yet.
  DurableWriter writer(kArtifactTag, kArtifactVersion);
  writer.add_record(kind + ' ' + std::to_string(epoch));
  writer.add_record(std::string(payload));
  auto committed = writer.commit(artifact_path(kind, epoch));
  if (!committed) return Result::failure("artifact store: " + committed.error());

  // The publish gap the recovery tests walk: artifact durable, CURRENT still
  // naming the old epoch.  Crashing here must recover to the old epoch.
  if (global_faults().should_fail_seq(kFaultPublishCurrent,
                                      path_fault_key(current_path(dir_)))) {
    return Result::failure("artifact store: injected fault before CURRENT flip");
  }

  // Stage 2: flip CURRENT.  On failure the in-memory pointer is rolled back
  // so this handle keeps serving the epoch on-disk readers see.
  const auto previous = current_;
  current_[kind] = epoch;
  auto flipped = write_current();
  if (!flipped) {
    current_ = previous;
    return Result::failure("artifact store: " + flipped.error());
  }
  return Result(epoch);
}

std::uint64_t ArtifactStore::current_epoch(const std::string& kind) const {
  const auto it = current_.find(kind);
  return it == current_.end() ? 0 : it->second;
}

Expected<std::string, std::string> ArtifactStore::read_payload(
    const std::string& kind, std::uint64_t epoch) const {
  using Result = Expected<std::string, std::string>;
  if (!valid_kind(kind)) {
    return Result::failure("artifact store: invalid kind '" + kind + "'");
  }
  if (epoch == kCurrentEpoch) {
    epoch = current_epoch(kind);
    if (epoch == 0) {
      return Result::failure("artifact store: no published epoch for '" + kind + "'");
    }
  }
  auto contents = read_durable_file(artifact_path(kind, epoch), kArtifactTag);
  if (!contents) return Result::failure("artifact store: " + contents.error());
  const auto& records = contents.value().records;
  if (records.size() != 2) {
    return Result::failure("artifact store: unexpected record count in " +
                           artifact_path(kind, epoch));
  }
  std::istringstream meta(records[0]);
  std::string got_kind;
  std::uint64_t got_epoch = 0;
  if (!(meta >> got_kind >> got_epoch) || got_kind != kind || got_epoch != epoch) {
    return Result::failure("artifact store: meta/path mismatch in " +
                           artifact_path(kind, epoch));
  }
  return Result(std::string(records[1]));
}

}  // namespace trajkit::durable
