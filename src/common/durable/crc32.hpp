// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over byte ranges.
//
// Every durable artifact in trajkit — framed model files, the crowdsource
// write-ahead journal, snapshots — carries one CRC per record plus one per
// file, so a torn write or a flipped byte is detected at load time instead of
// silently feeding garbage into the detector.  The implementation is the
// classic 256-entry table variant: deterministic, allocation-free, and fast
// enough that framing overhead never shows up next to disk I/O.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace trajkit::durable {

/// CRC-32 of `data`; pass a previous result as `seed` to checksum a file in
/// chunks (the final value is identical to one call over the concatenation).
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

inline std::uint32_t crc32(std::string_view data, std::uint32_t seed = 0) {
  return crc32(data.data(), data.size(), seed);
}

}  // namespace trajkit::durable
