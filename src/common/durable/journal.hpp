// CRC-framed write-ahead journal with deterministic torn-tail recovery.
//
// The streaming half of the durability story: appended records (crowdsourced
// RPD scans, in the wifi layer) land in this journal *first*, each framed
// with a sequence number and a CRC-32, and are only folded into the durable
// snapshot by an explicit compaction.  After a crash, open() replays every
// intact record in order and truncates the file at the first torn or corrupt
// frame — so recovery always yields an exact prefix of what was appended,
// never a hybrid.
//
// Sequence numbers make snapshot+journal recovery idempotent: every record
// carries the seq it was appended under, the companion snapshot stores the
// next seq it has folded in, and replay skips records older than the
// snapshot.  A crash anywhere between "snapshot committed" and "journal
// reset" therefore double-applies nothing.
//
// File layout (integers native little-endian, like durable_file):
//
//   "TKJRNL1\n"        8-byte magic
//   u32 tag_len, tag
//   u64 base_seq       seq of the first record this file may hold
//   per record, one of two frame kinds (freely mixed in one file):
//     v1 ("TKJR"):     u64 seq, u32 payload_len, u32 crc32(payload), payload
//     v2 ("TKJ2"):     u64 seq, u64 uploader, u32 payload_len,
//                      u32 crc32(uploader_bytes || payload), payload
//
// The v2 frame carries per-record *provenance*: a stable uploader id stamped
// by the ingestion layer, so a crowdsourced record keeps its origin through
// replay, compaction and follower WAL shipping.  Appends with an anonymous
// uploader (id 0) emit v1 frames — a journal that never sees provenance is
// byte-identical to the pre-v2 format — and v1 frames replay as uploader 0,
// so pre-provenance journals recover unchanged.
//
// The append path carries fault/crash points (kFaultAppendPartial lands
// mid-frame, kFaultAppendSync after the frame but before fsync).  A kCrash
// there kills the process and leaves a genuinely torn tail for the harness;
// a kFail — like any real write or fsync error — rolls the file back to its
// pre-append size before returning, so a live journal never sits behind a
// torn frame that a later open() would truncate (along with every record
// acknowledged after it).
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/expected.hpp"

namespace trajkit::durable {

/// Fault/crash points of the journal, in execution order.
inline constexpr const char* kFaultAppendPartial = "journal.append_partial";
inline constexpr const char* kFaultAppendSync = "journal.append_sync";
inline constexpr const char* kFaultJournalReset = "journal.reset";

class Journal {
 public:
  struct Record {
    std::uint64_t seq = 0;
    std::string payload;
    /// Provenance of a v2 frame; 0 (anonymous) for v1 frames.
    std::uint64_t uploader = 0;
  };

  /// What open() found on disk.
  struct Recovery {
    std::vector<Record> records;   ///< every intact record, in order
    std::uint64_t truncated_bytes = 0;  ///< torn-tail bytes discarded
  };

  /// Open (creating if absent) the journal at `path`.  A new journal starts
  /// at `base_seq_if_new` and is created atomically, so a crash during
  /// creation leaves either no journal or a valid empty one.  An existing
  /// journal is recovered: intact records are replayed into recovery(),
  /// and a torn tail is physically truncated off the file.  A file whose
  /// *header* does not parse is an error — that is corruption of committed
  /// state, not a torn append, and must not be silently discarded.
  static Expected<std::unique_ptr<Journal>, std::string> open(
      const std::string& path, std::string_view tag,
      std::uint64_t base_seq_if_new = 0, bool sync_each_append = true);

  /// Read-only scan of a journal file owned by someone else: every intact
  /// record, in order, without truncating a torn tail or taking an append
  /// fd.  This is the replication hook — a leader ships its write-ahead
  /// frames by letting a follower read (path, tag) and replay the records
  /// through its own seq-skip apply path, and a follower cold-start replays
  /// the leader's journal tail on top of a copied snapshot the same way.  A
  /// missing file is an error (the caller knows whether a journal must
  /// exist); a torn tail is not — the intact prefix is exactly what the
  /// owner would recover.
  static Expected<Recovery, std::string> read_records(const std::string& path,
                                                      std::string_view tag);

  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  const Recovery& recovery() const { return recovery_; }
  std::uint64_t next_seq() const { return next_seq_; }
  const std::string& path() const { return path_; }

  /// Append one record; returns the seq it was assigned.  A non-zero
  /// `uploader` stamps the record with its provenance (a v2 frame); 0 keeps
  /// the anonymous v1 frame, byte-identical to the pre-provenance format.
  /// With sync_each_append the record is fsynced before returning (the WAL
  /// contract); otherwise durability is deferred to sync()/the OS.  On
  /// failure the file is rolled back to its pre-append size (the record was
  /// never acknowledged, so it must not linger as a torn frame under later
  /// appends); if the rollback itself fails the journal is poisoned — every
  /// later append fails — rather than risk acknowledging records a future
  /// recovery would truncate away.
  Expected<std::uint64_t, std::string> append(std::string_view payload,
                                              std::uint64_t uploader = 0);

  /// fsync the journal fd.
  Expected<bool, std::string> sync();

  /// Atomically replace the file with a fresh empty journal starting at
  /// `base_seq` (compaction's final step).  The old records stay readable by
  /// any already-open handle until the rename lands; a crash before the
  /// rename leaves the old journal, whose stale records the seq check skips.
  Expected<bool, std::string> reset(std::uint64_t base_seq);

 private:
  Journal(std::string path, std::string tag, bool sync_each_append);

  /// Failed-append recovery: truncate the file back to `pre_append_size` so
  /// no torn frame survives under an open journal; poisons the journal
  /// (fd_ = -1) when the rollback fails.  Returns the error message to
  /// report, annotated if poisoned.
  std::string abort_append(off_t pre_append_size, std::string message);

  std::string path_;
  std::string tag_;
  bool sync_each_append_;
  int fd_ = -1;
  std::uint64_t next_seq_ = 0;
  Recovery recovery_;
};

}  // namespace trajkit::durable
