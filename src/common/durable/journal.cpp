#include "common/durable/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/durable/crc32.hpp"
#include "common/durable/durable_file.hpp"
#include "common/fault.hpp"

namespace trajkit::durable {
namespace {

constexpr char kMagic[8] = {'T', 'K', 'J', 'R', 'N', 'L', '1', '\n'};
constexpr char kRecordMagic[4] = {'T', 'K', 'J', 'R'};
constexpr char kRecordMagicV2[4] = {'T', 'K', 'J', '2'};
constexpr std::size_t kMaxTagLen = 256;
constexpr std::size_t kMaxPayload = 1u << 26;  ///< 64 MiB per record

void append_u32(std::string& out, std::uint32_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

std::string header_bytes(std::string_view tag, std::uint64_t base_seq) {
  std::string out;
  out.append(kMagic, sizeof kMagic);
  append_u32(out, static_cast<std::uint32_t>(tag.size()));
  out += tag;
  append_u64(out, base_seq);
  return out;
}

bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

struct Cursor {
  std::string_view data;
  std::size_t pos = 0;

  std::size_t remaining() const { return data.size() - pos; }
  bool read_bytes(void* out, std::size_t n) {
    if (remaining() < n) return false;
    std::memcpy(out, data.data() + pos, n);
    pos += n;
    return true;
  }
  bool read_u32(std::uint32_t& out) { return read_bytes(&out, sizeof out); }
  bool read_u64(std::uint64_t& out) { return read_bytes(&out, sizeof out); }
  bool read_view(std::string_view& out, std::size_t n) {
    if (remaining() < n) return false;
    out = data.substr(pos, n);
    pos += n;
    return true;
  }
};

/// Parsed body of a journal file: header seq plus the intact record prefix.
struct ParsedJournal {
  std::uint64_t base_seq = 0;
  Journal::Recovery recovery;
  std::size_t good_end = 0;  ///< file offset after the last intact record
};

Expected<ParsedJournal, std::string> parse_journal(const std::string& bytes,
                                                   std::string_view tag,
                                                   const std::string& path) {
  using Result = Expected<ParsedJournal, std::string>;
  Cursor cur{bytes};
  char magic[sizeof kMagic];
  if (!cur.read_bytes(magic, sizeof magic) ||
      std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    return Result::failure("journal: bad magic in " + path);
  }
  std::uint32_t tag_len = 0;
  if (!cur.read_u32(tag_len) || tag_len > kMaxTagLen) {
    return Result::failure("journal: bad tag length in " + path);
  }
  std::string_view file_tag;
  if (!cur.read_view(file_tag, tag_len) || file_tag != tag) {
    return Result::failure("journal: tag mismatch in " + path);
  }
  ParsedJournal parsed;
  if (!cur.read_u64(parsed.base_seq)) {
    return Result::failure("journal: truncated header in " + path);
  }

  // Replay intact records; stop at the first frame that is short, has a bad
  // magic/CRC or an out-of-order seq.  Everything from there on is a torn
  // tail (or trailing corruption).  v1 ("TKJR") and v2 ("TKJ2", with a
  // provenance field) frames mix freely; a v1 frame replays as uploader 0.
  std::uint64_t next_seq = parsed.base_seq;
  parsed.good_end = cur.pos;
  while (cur.remaining() > 0) {
    char rec_magic[sizeof kRecordMagic];
    std::uint64_t seq = 0;
    std::uint64_t uploader = 0;
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    if (!cur.read_bytes(rec_magic, sizeof rec_magic)) break;
    const bool v2 = std::memcmp(rec_magic, kRecordMagicV2, sizeof kRecordMagicV2) == 0;
    if (!v2 && std::memcmp(rec_magic, kRecordMagic, sizeof kRecordMagic) != 0) {
      break;
    }
    if (!cur.read_u64(seq) || (v2 && !cur.read_u64(uploader)) ||
        !cur.read_u32(len) || !cur.read_u32(crc)) {
      break;
    }
    if (seq != next_seq || len > kMaxPayload || len > cur.remaining()) {
      break;
    }
    std::string_view payload;
    cur.read_view(payload, len);
    // The v2 CRC chains the provenance field in front of the payload, so a
    // flipped uploader byte invalidates the whole frame — identity stamps
    // are as tamper-evident as the data they stamp.
    std::uint32_t expect = 0;
    if (v2) {
      char stamp[sizeof uploader];
      std::memcpy(stamp, &uploader, sizeof stamp);
      expect = crc32(payload.data(), payload.size(), crc32(stamp, sizeof stamp));
    } else {
      expect = crc32(payload);
    }
    if (expect != crc) break;
    parsed.recovery.records.push_back({seq, std::string(payload), uploader});
    next_seq = seq + 1;
    parsed.good_end = cur.pos;
  }
  parsed.recovery.truncated_bytes = bytes.size() - parsed.good_end;
  return Result(std::move(parsed));
}

}  // namespace

Journal::Journal(std::string path, std::string tag, bool sync_each_append)
    : path_(std::move(path)), tag_(std::move(tag)),
      sync_each_append_(sync_each_append) {}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

Expected<std::unique_ptr<Journal>, std::string> Journal::open(
    const std::string& path, std::string_view tag, std::uint64_t base_seq_if_new,
    bool sync_each_append) {
  using Result = Expected<std::unique_ptr<Journal>, std::string>;

  // A crash between opening and renaming the temp file inside a previous
  // atomic write (creation or reset) leaves `path + ".tmp"` behind; nothing
  // else ever reclaims it, so recovery does.
  remove_stale_tmp(path);

  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) {
    // No journal yet: create one atomically, so a crash mid-creation leaves
    // either nothing (retried next open) or a complete empty journal.
    auto created = write_file_atomic(path, header_bytes(tag, base_seq_if_new));
    if (!created) return Result::failure("journal create: " + created.error());
  }

  auto raw = read_file(path);
  if (!raw) return Result::failure("journal: " + raw.error());
  const std::string& bytes = raw.value();

  auto parsed = parse_journal(bytes, tag, path);
  if (!parsed) return Result::failure(parsed.error());

  std::unique_ptr<Journal> journal(
      new Journal(path, std::string(tag), sync_each_append));
  // A torn tail (or trailing corruption) is truncated off deterministically
  // below, so the journal recovers to an exact record prefix.
  const std::size_t good_end = parsed.value().good_end;
  journal->next_seq_ = parsed.value().base_seq + parsed.value().recovery.records.size();
  journal->recovery_ = std::move(parsed).value().recovery;

  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Result::failure("journal: cannot open " + path + ": " +
                           std::strerror(errno));
  }
  if (journal->recovery_.truncated_bytes > 0) {
    if (::ftruncate(fd, static_cast<off_t>(good_end)) != 0 || ::fsync(fd) != 0) {
      ::close(fd);
      return Result::failure("journal: cannot truncate torn tail of " + path);
    }
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    return Result::failure("journal: cannot seek " + path);
  }
  journal->fd_ = fd;
  return Result(std::move(journal));
}

Expected<Journal::Recovery, std::string> Journal::read_records(
    const std::string& path, std::string_view tag) {
  using Result = Expected<Recovery, std::string>;
  auto raw = read_file(path);
  if (!raw) return Result::failure("journal: " + raw.error());
  auto parsed = parse_journal(raw.value(), tag, path);
  if (!parsed) return Result::failure(parsed.error());
  return Result(std::move(parsed).value().recovery);
}

std::string Journal::abort_append(off_t pre_append_size, std::string message) {
  // A failed append must not leave a torn frame behind an open, usable
  // journal: later appends would land after the tear, be acknowledged, and
  // then be truncated away by the next open()'s torn-tail recovery — acked
  // records silently lost.  Roll the file back to its pre-append size; the
  // truncated length becomes durable with the next fsynced append, and a
  // crash before that recovers fine (open() cuts any torn tail, and the
  // failed record was never acknowledged).  If even the rollback fails,
  // poison the journal so every further append fails loudly.
  if (::ftruncate(fd_, pre_append_size) == 0 &&
      ::lseek(fd_, pre_append_size, SEEK_SET) >= 0) {
    return message;
  }
  message += " (rollback failed: ";
  message += std::strerror(errno);
  message += "; journal poisoned)";
  ::close(fd_);
  fd_ = -1;
  return message;
}

Expected<std::uint64_t, std::string> Journal::append(std::string_view payload,
                                                     std::uint64_t uploader) {
  using Result = Expected<std::uint64_t, std::string>;
  if (fd_ < 0) return Result::failure("journal: not open");
  if (payload.size() > kMaxPayload) {
    return Result::failure("journal: oversized record");
  }
  auto& faults = global_faults();
  const std::uint64_t key = path_fault_key(path_);

  // Anonymous appends keep the v1 frame so a provenance-free journal stays
  // byte-identical to the pre-v2 format; a named uploader rides a v2 frame.
  std::string frame;
  frame.reserve(payload.size() + 28);
  std::uint32_t crc = 0;
  if (uploader == 0) {
    frame.append(kRecordMagic, sizeof kRecordMagic);
    append_u64(frame, next_seq_);
    crc = crc32(payload);
  } else {
    frame.append(kRecordMagicV2, sizeof kRecordMagicV2);
    append_u64(frame, next_seq_);
    append_u64(frame, uploader);
    // Chain the provenance bytes into the CRC (see parse_journal): the
    // identity stamp must be as tamper-evident as the payload it stamps.
    char stamp[sizeof uploader];
    std::memcpy(stamp, &uploader, sizeof stamp);
    crc = crc32(payload.data(), payload.size(), crc32(stamp, sizeof stamp));
  }
  append_u32(frame, static_cast<std::uint32_t>(payload.size()));
  append_u32(frame, crc);
  frame += payload;

  const off_t start = ::lseek(fd_, 0, SEEK_CUR);
  if (start < 0) {
    return Result::failure("journal: cannot locate append offset in " + path_);
  }

  // Half the frame, then the fault point, then the rest: a kCrash here takes
  // the process down mid-frame, leaving a torn tail for the next open() to
  // truncate.  A kFail (like any real write/fsync error) instead returns
  // through abort_append, which rolls the file back so the journal stays
  // frame-aligned and usable.
  const std::size_t half = frame.size() / 2;
  if (!write_all(fd_, frame.data(), half)) {
    return Result::failure(abort_append(start, "journal: short write to " + path_));
  }
  if (faults.should_fail_seq(kFaultAppendPartial, key)) {
    return Result::failure(abort_append(start, "journal: injected fault mid-append"));
  }
  if (!write_all(fd_, frame.data() + half, frame.size() - half)) {
    return Result::failure(abort_append(start, "journal: short write to " + path_));
  }
  if (faults.should_fail_seq(kFaultAppendSync, key)) {
    return Result::failure(abort_append(start, "journal: injected fault before fsync"));
  }
  if (sync_each_append_ && ::fsync(fd_) != 0) {
    return Result::failure(abort_append(
        start, "journal: fsync failed: " + std::string(std::strerror(errno))));
  }
  return Result(next_seq_++);
}

Expected<bool, std::string> Journal::sync() {
  using Result = Expected<bool, std::string>;
  if (fd_ < 0) return Result::failure("journal: not open");
  if (::fsync(fd_) != 0) {
    return Result::failure("journal: fsync failed: " + std::string(std::strerror(errno)));
  }
  return Result(true);
}

Expected<bool, std::string> Journal::reset(std::uint64_t base_seq) {
  using Result = Expected<bool, std::string>;
  if (global_faults().should_fail_seq(kFaultJournalReset, path_fault_key(path_))) {
    return Result::failure("journal: injected fault before reset");
  }
  auto written = write_file_atomic(path_, header_bytes(tag_, base_seq));
  if (!written) return Result::failure("journal reset: " + written.error());
  // Re-point our fd at the fresh file (the old inode is unlinked by rename).
  const int fd = ::open(path_.c_str(), O_RDWR | O_APPEND);
  if (fd < 0) {
    return Result::failure("journal reset: cannot reopen " + path_ + ": " +
                           std::strerror(errno));
  }
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
  next_seq_ = base_seq;
  recovery_ = Recovery{};
  return Result(true);
}

}  // namespace trajkit::durable
