// Minimal Expected<T, E>: a value or an error, without exceptions.
//
// The repo's loaders historically threw on malformed input, which is the
// wrong contract for a serving process that must answer "did the model load?"
// without unwinding the stack.  This is the std::expected subset the code
// base needs (C++23 is not required by the build), kept deliberately small:
// construct from a value, construct a failure via Expected<T, E>::failure or
// the Unexpected<E> helper, then test and unwrap.
#pragma once

#include <stdexcept>
#include <utility>
#include <variant>

namespace trajkit {

/// Error carrier distinguishing "E as failure" from "T as value" when the
/// two types coincide (mirrors std::unexpected).
template <typename E>
struct Unexpected {
  E error;
};

template <typename E>
Unexpected<std::decay_t<E>> unexpected(E&& error) {
  return {std::forward<E>(error)};
}

template <typename T, typename E>
class Expected {
 public:
  Expected(T value) : state_(std::in_place_index<0>, std::move(value)) {}
  Expected(Unexpected<E> failure)
      : state_(std::in_place_index<1>, std::move(failure.error)) {}

  static Expected failure(E error) { return Expected(Unexpected<E>{std::move(error)}); }

  bool has_value() const { return state_.index() == 0; }
  explicit operator bool() const { return has_value(); }

  /// Unwrap; throws std::logic_error when unwrapping the wrong side (the
  /// caller skipped the has_value() check — a programming error, not input).
  T& value() & { return check_value(), std::get<0>(state_); }
  const T& value() const& { return check_value(), std::get<0>(state_); }
  T&& value() && { return check_value(), std::get<0>(std::move(state_)); }

  const E& error() const { return check_error(), std::get<1>(state_); }

  T value_or(T fallback) const& {
    return has_value() ? std::get<0>(state_) : std::move(fallback);
  }

 private:
  void check_value() const {
    if (!has_value()) throw std::logic_error("Expected: value() on an error");
  }
  void check_error() const {
    if (has_value()) throw std::logic_error("Expected: error() on a value");
  }

  std::variant<T, E> state_;
};

}  // namespace trajkit
