#include "common/rng.hpp"

#include <cmath>

namespace trajkit {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw = next();
  while (draw >= limit) draw = next();
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u = 0.0;
  while (u <= 1e-300) u = uniform();
  const double v = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u));
  spare_normal_ = mag * std::sin(2.0 * M_PI * v);
  has_spare_ = true;
  return mag * std::cos(2.0 * M_PI * v);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::chance(double p) { return uniform() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0 || weights.empty()) return 0;
  double draw = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw <= 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::split() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

Rng Rng::substream(std::uint64_t key, std::uint64_t index) {
  // Two splitmix64 rounds over a golden-ratio-spread counter decorrelate
  // adjacent indices; the Rng constructor then expands the result into the
  // full 256-bit xoshiro state.
  std::uint64_t x = key + 0x9e3779b97f4a7c15ULL * (index + 1);
  const std::uint64_t a = splitmix64(x);
  const std::uint64_t b = splitmix64(x);
  return Rng(a ^ rotl(b, 32));
}

}  // namespace trajkit
