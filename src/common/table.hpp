// ASCII table printer used by the benchmark harnesses to print the paper's
// tables (Table I-IV) and figure series in a uniform format.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace trajkit {

/// Column-aligned ASCII table.  Cells are strings; numeric helpers format
/// with a fixed precision so every bench prints consistently.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one data row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Format a double with the given number of decimals.
  static std::string num(double v, int decimals = 4);

  /// Render with column separators and a header rule.
  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace trajkit
