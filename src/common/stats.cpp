#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace trajkit {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double min_of(const std::vector<double>& xs) {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

void RunningStats::add(double x) {
  ++n_;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace trajkit
