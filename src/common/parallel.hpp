// Deterministic thread-pool execution layer.
//
// Every hot path in trajkit (dataset simulation, per-point RPD confidence,
// minibatch gradient accumulation, batch DTW) fans out over independent work
// items.  This header provides the one sanctioned way to do that without
// giving up bit-reproducibility:
//
//   * The work decomposition depends only on (range, grain) — never on the
//     thread count.  Threads only decide *which worker* executes a chunk,
//     not what the chunks are.
//   * Reductions (parallel_map_reduce) combine per-chunk partials in chunk
//     index order on the calling thread, so floating-point summation order
//     is identical for --threads 1 and --threads N.
//   * Randomised tasks draw from counter-based RNG sub-streams
//     (Rng::substream(key, index)) instead of a shared generator, so the
//     draw sequence seen by task i is a pure function of (key, i).
//
// Together these give the invariant the determinism regression tests assert:
// for a fixed seed, results are byte-identical for any thread count.
//
// Nested parallel regions are serialized: a parallel_for issued from inside a
// running task executes inline on the calling worker (same chunk order), so
// composed parallel code cannot deadlock and stays deterministic.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace trajkit {

/// Fixed-size thread pool (no work stealing: chunks are claimed from a single
/// shared counter, which keeps the scheduler trivial and the decomposition
/// deterministic).  `threads` counts the calling thread: a pool of size 1
/// spawns no workers and runs everything inline.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes, including the calling thread.
  std::size_t size() const { return workers_.size() + 1; }

  /// Execute chunk_fn(c) for every c in [0, nchunks), blocking until all
  /// chunks finish.  The calling thread participates.  If one or more chunks
  /// throw, the exception of the lowest-indexed failing chunk is rethrown
  /// (other chunks may or may not have run).  Nested calls run inline.
  void run_chunks(std::size_t nchunks,
                  const std::function<void(std::size_t)>& chunk_fn);

  /// True while the current thread is executing inside a parallel region
  /// (used to serialize nested parallelism).
  static bool in_parallel_region();

 private:
  struct Batch;
  void worker_loop();
  static void participate(Batch& batch);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::shared_ptr<Batch> batch_;  // batch being executed, or null
  std::uint64_t epoch_ = 0;       // bumped when a new batch is published
  bool stop_ = false;
};

/// Current global thread count (resolves and builds the pool on first use).
std::size_t global_threads();

/// Reconfigure the global pool.  n = 0 means "auto": the TRAJKIT_THREADS
/// environment variable if set and positive, else hardware_concurrency().
/// Must not be called while a parallel region is running.
void set_global_threads(std::size_t n);

/// The process-wide pool used by all parallel_* helpers.
ThreadPool& global_pool();

/// Run fn(lo, hi) over [begin, end) split into contiguous chunks of `grain`
/// indices (last chunk may be short).  The decomposition depends only on the
/// range and grain, never on the thread count.
void parallel_chunks(std::size_t begin, std::size_t end, std::size_t grain,
                     const std::function<void(std::size_t, std::size_t)>& fn);

/// Run fn(i) for every i in [begin, end), chunked by `grain` to amortise
/// scheduling.  Iterations must be independent; writes must go to disjoint
/// locations (e.g. out[i]).
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t)>& fn);

/// Deterministic reduction: map_chunk(lo, hi) produces one partial per chunk;
/// partials are combined with combine(acc, partial) strictly in chunk index
/// order on the calling thread, so the result is independent of the thread
/// count (floating-point order included).
template <typename T, typename MapChunk, typename Combine>
T parallel_map_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                      T init, MapChunk&& map_chunk, Combine&& combine) {
  if (end <= begin) return init;
  if (grain == 0) grain = 1;
  const std::size_t nchunks = (end - begin + grain - 1) / grain;
  std::vector<std::optional<T>> partials(nchunks);
  global_pool().run_chunks(nchunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * grain;
    const std::size_t hi = lo + grain < end ? lo + grain : end;
    partials[c].emplace(map_chunk(lo, hi));
  });
  T acc = std::move(init);
  for (auto& p : partials) acc = combine(std::move(acc), std::move(*p));
  return acc;
}

}  // namespace trajkit
