// Binary-classification metrics.
//
// Label convention follows the paper's prediction function J: label 1 means
// "real trajectory", label 0 means "forged".  The *positive class* for
// precision/recall is the forged class (the detector's job is to catch
// fakes), matching how Tables I and IV report precision/recall of detection.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace trajkit {

/// Confusion matrix for the binary real(1)/fake(0) decision.
struct ConfusionMatrix {
  std::size_t true_positive = 0;   ///< fake predicted fake
  std::size_t false_positive = 0;  ///< real predicted fake
  std::size_t true_negative = 0;   ///< real predicted real
  std::size_t false_negative = 0;  ///< fake predicted real

  void add(int truth_label, int predicted_label);

  std::size_t total() const;
  double accuracy() const;
  /// Of everything flagged as fake, the share that was fake.
  double precision() const;
  /// Of all fakes, the share that was flagged.
  double recall() const;
  double f1() const;

  std::string summary() const;
};

/// Build a confusion matrix from parallel label vectors (1 = real, 0 = fake).
ConfusionMatrix evaluate_binary(const std::vector<int>& truth,
                                const std::vector<int>& predicted);

/// Area under the ROC curve for scores where *higher means more likely real*
/// (label 1).  Ties are handled by the rank-sum (Mann-Whitney) formulation.
/// Returns 0.5 for degenerate inputs (single-class label sets).
double roc_auc(const std::vector<int>& truth, const std::vector<double>& scores);

}  // namespace trajkit
