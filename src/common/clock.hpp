// Monotonic time source for the serving layer.
//
// Wall-clock reads are deliberately funnelled through one interface so that
// (a) latency accounting is consistently monotonic (never jumps with NTP) and
// (b) tests can substitute a manual clock to exercise deadline handling
// without sleeping.
#pragma once

#include <atomic>
#include <cstdint>

namespace trajkit {

/// Microsecond monotonic clock.  Implementations must be safe to call from
/// multiple threads.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual std::int64_t now_us() const = 0;
  /// Block the calling thread for `us` (retry backoff).  Non-positive
  /// durations return immediately.
  virtual void sleep_us(std::int64_t us) const = 0;
};

/// The real thing: std::chrono::steady_clock.
class SteadyClock final : public Clock {
 public:
  std::int64_t now_us() const override;
  void sleep_us(std::int64_t us) const override;
};

/// Test clock: time advances only when told to.  sleep_us() advances the
/// clock instead of blocking, so backoff-heavy paths run instantly under test
/// while the elapsed time stays observable.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(std::int64_t start_us = 0) : now_us_(start_us) {}
  std::int64_t now_us() const override {
    return now_us_.load(std::memory_order_relaxed);
  }
  void sleep_us(std::int64_t us) const override {
    if (us > 0) now_us_.fetch_add(us, std::memory_order_relaxed);
  }
  void advance_us(std::int64_t delta_us) {
    now_us_.fetch_add(delta_us, std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<std::int64_t> now_us_;
};

/// Process-wide steady clock instance (stateless, shared freely).
const Clock& steady_clock();

}  // namespace trajkit
