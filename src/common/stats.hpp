// Small descriptive-statistics helpers shared by the simulator calibration,
// the MinD/R experiments and the benchmark harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace trajkit {

/// Arithmetic mean; 0 for an empty input.
double mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
double stddev(const std::vector<double>& xs);

/// Population variance helper used by the GPS-error experiment.
double variance(const std::vector<double>& xs);

/// Minimum / maximum; 0 for an empty input.
double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);

/// p-th percentile (p in [0, 100]) by linear interpolation on a sorted copy.
double percentile(std::vector<double> xs, double p);

/// Median shortcut.
double median(std::vector<double> xs);

/// Online accumulator for mean/std without storing samples.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace trajkit
