#include "common/fault.hpp"

#include <unistd.h>

#include "common/rng.hpp"

namespace trajkit {
namespace {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

void FaultInjector::configure(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
  points_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

void FaultInjector::arm(const std::string& point, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  points_[point] = PointState{spec, {}, {}};
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::decide(PointState& state, std::uint64_t point_hash,
                           std::uint64_t key, std::uint64_t attempt) {
  ++state.counters.attempts;
  bool fail = attempt < state.spec.fail_first;
  if (!fail && state.spec.probability > 0.0) {
    // One Bernoulli per (seed, point, key, attempt): the point name folds
    // into the sub-stream key, the attempt into the counter index, so every
    // decision is independent and replayable.
    Rng sub = Rng::substream(seed_ ^ point_hash, key * 0x100000001b3ull + attempt);
    fail = sub.uniform() < state.spec.probability;
  }
  if (fail) {
    ++state.counters.injected;
    // A crash action never returns to the caller: _exit skips atexit hooks
    // and stdio flushes, so whatever bytes the writer had buffered or not yet
    // synced are lost exactly as in a real kill — which is the point.
    if (state.spec.action == FaultAction::kCrash) ::_exit(kCrashExitCode);
  }
  return fail;
}

bool FaultInjector::should_fail(std::string_view point, std::uint64_t key,
                                std::uint64_t attempt) {
  if (!armed()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(std::string(point));
  if (it == points_.end()) return false;
  return decide(it->second, fnv1a(point), key, attempt);
}

bool FaultInjector::should_fail_seq(std::string_view point, std::uint64_t key) {
  if (!armed()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(std::string(point));
  if (it == points_.end()) return false;
  const std::uint64_t attempt = it->second.seq_attempts[key]++;
  return decide(it->second, fnv1a(point), key, attempt);
}

void FaultInjector::check(std::string_view point, std::uint64_t key,
                          std::uint64_t attempt) {
  if (should_fail(point, key, attempt)) raise(point, key, attempt);
}

void FaultInjector::check_seq(std::string_view point, std::uint64_t key) {
  if (!armed()) return;
  std::uint64_t attempt = 0;
  bool fail = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = points_.find(std::string(point));
    if (it == points_.end()) return;
    attempt = it->second.seq_attempts[key]++;
    fail = decide(it->second, fnv1a(point), key, attempt);
  }
  if (fail) raise(point, key, attempt);
}

void FaultInjector::raise(std::string_view point, std::uint64_t key,
                          std::uint64_t attempt) {
  throw FaultError("injected fault at " + std::string(point) + " (key " +
                   std::to_string(key) + ", attempt " + std::to_string(attempt) +
                   ")");
}

FaultInjector::PointCounters FaultInjector::counters(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  return it != points_.end() ? it->second.counters : PointCounters{};
}

std::uint64_t FaultInjector::total_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [name, state] : points_) total += state.counters.injected;
  return total;
}

FaultInjector& global_faults() {
  static FaultInjector injector;
  return injector;
}

FaultScope::FaultScope(std::uint64_t seed) { global_faults().configure(seed); }

FaultScope::~FaultScope() { global_faults().clear(); }

FaultScope& FaultScope::arm(const std::string& point, FaultSpec spec) {
  global_faults().arm(point, spec);
  return *this;
}

}  // namespace trajkit
