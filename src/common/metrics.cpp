#include "common/metrics.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace trajkit {

void ConfusionMatrix::add(int truth_label, int predicted_label) {
  const bool truth_fake = truth_label == 0;
  const bool pred_fake = predicted_label == 0;
  if (truth_fake && pred_fake) {
    ++true_positive;
  } else if (!truth_fake && pred_fake) {
    ++false_positive;
  } else if (!truth_fake && !pred_fake) {
    ++true_negative;
  } else {
    ++false_negative;
  }
}

std::size_t ConfusionMatrix::total() const {
  return true_positive + false_positive + true_negative + false_negative;
}

double ConfusionMatrix::accuracy() const {
  const auto n = total();
  if (n == 0) return 0.0;
  return static_cast<double>(true_positive + true_negative) / static_cast<double>(n);
}

double ConfusionMatrix::precision() const {
  const auto flagged = true_positive + false_positive;
  if (flagged == 0) return 0.0;
  return static_cast<double>(true_positive) / static_cast<double>(flagged);
}

double ConfusionMatrix::recall() const {
  const auto fakes = true_positive + false_negative;
  if (fakes == 0) return 0.0;
  return static_cast<double>(true_positive) / static_cast<double>(fakes);
}

double ConfusionMatrix::f1() const {
  const double p = precision();
  const double r = recall();
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

std::string ConfusionMatrix::summary() const {
  std::ostringstream os;
  os << "acc=" << accuracy() << " prec=" << precision() << " rec=" << recall()
     << " f1=" << f1() << " (n=" << total() << ")";
  return os.str();
}

double roc_auc(const std::vector<int>& truth, const std::vector<double>& scores) {
  if (truth.size() != scores.size()) {
    throw std::invalid_argument("roc_auc: size mismatch");
  }
  std::size_t positives = 0;
  for (int t : truth) positives += t == 1;
  const std::size_t negatives = truth.size() - positives;
  if (positives == 0 || negatives == 0) return 0.5;

  // Rank-sum with midranks for ties.
  std::vector<std::size_t> order(truth.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });
  double rank_sum_positive = 0.0;
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double midrank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) {
      if (truth[order[k]] == 1) rank_sum_positive += midrank;
    }
    i = j + 1;
  }
  const double p = static_cast<double>(positives);
  const double n = static_cast<double>(negatives);
  return (rank_sum_positive - p * (p + 1.0) / 2.0) / (p * n);
}

ConfusionMatrix evaluate_binary(const std::vector<int>& truth,
                                const std::vector<int>& predicted) {
  if (truth.size() != predicted.size()) {
    throw std::invalid_argument("evaluate_binary: size mismatch");
  }
  ConfusionMatrix cm;
  for (std::size_t i = 0; i < truth.size(); ++i) cm.add(truth[i], predicted[i]);
  return cm;
}

}  // namespace trajkit
