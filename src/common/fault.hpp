// Deterministic fault injection for chaos-testing the serving and I/O paths.
//
// A fault point is a named hook compiled into production code (model load,
// RPD shard lookup, service dispatch).  Disarmed — the default — a hook is a
// single relaxed atomic load.  Armed, it decides whether to inject a failure
// as a *pure function* of (seed, point, key, attempt), seeded through the
// same counter-based RNG sub-streams as the execution layer (PR 1):
//
//   * `key` is the caller's logical identity for the operation — a request
//     id, a reference-point index, a path hash — never an arrival ordinal.
//     Because the decision depends only on logical identity, a failure
//     schedule replays bit-identically across `--threads N` and submission
//     orders, exactly like every other randomised path in trajkit.
//   * `attempt` is the caller's retry ordinal.  Probability faults draw one
//     Bernoulli per (key, attempt); `fail_first` faults fail attempts
//     [0, fail_first) of every key, which is how a test proves a bounded
//     retry loop deterministically recovers at attempt N.
//
// Callers that cannot thread an attempt ordinal through (e.g. model loading,
// which is naturally sequential at startup) use the `_seq` variants, which
// keep an internal per-(point, key) attempt counter; those are deterministic
// only when calls on one key are externally ordered.
//
// tests/fault_test.cpp covers the decision function; tests/chaos_test.cpp
// drives randomised schedules through the full serving path.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace trajkit {

/// The exception every armed fault point throws (or converts to an error
/// string on non-throwing paths).  Distinct from std::runtime_error so that
/// recovery code can tell an injected/transient failure from a caller error
/// (bad upload, untrained model) that retrying can never fix.
class FaultError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// How an armed fault point fails when its decision fires.
enum class FaultAction {
  /// Report failure to the caller: should_fail returns true, check throws
  /// FaultError.  The process keeps running — the "transient error" shape.
  kFail,
  /// _exit(kCrashExitCode) on the spot: no unwinding, no flushes, no
  /// destructors — the "kill -9 mid-write" shape the crash-recovery harness
  /// uses to prove that every durable format survives a torn operation.
  kCrash,
};

/// Exit code of a FaultAction::kCrash termination, so a forking test harness
/// can tell an injected crash from any other child death.
inline constexpr int kCrashExitCode = 86;

/// What an armed fault point injects.
struct FaultSpec {
  /// Bernoulli failure probability per (key, attempt); 0 disables.
  double probability = 0.0;
  /// Attempts [0, fail_first) of every key fail deterministically — the
  /// "transient fault that a retry survives" shape.
  std::uint64_t fail_first = 0;
  /// What happens when the decision fires (see FaultAction).
  FaultAction action = FaultAction::kFail;
};

/// Registry of armed fault points.  One process-global instance
/// (global_faults()) is consulted by every hook; tests arm it through a
/// FaultScope so it can never stay armed past the test body.
class FaultInjector {
 public:
  struct PointCounters {
    std::uint64_t attempts = 0;  ///< times the hook consulted this point
    std::uint64_t injected = 0;  ///< times it decided to fail
  };

  /// Re-seed and drop every armed point and counter.
  void configure(std::uint64_t seed);

  /// Arm `point` with `spec` (replaces any previous spec for the point).
  void arm(const std::string& point, FaultSpec spec);

  /// Disarm everything (counters reset too).
  void clear();

  /// True when at least one point is armed — the hooks' fast-path check.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Pure decision: should the `attempt`-th try of operation `key` at
  /// `point` fail?  Always false for unarmed points.  Updates counters.
  bool should_fail(std::string_view point, std::uint64_t key,
                   std::uint64_t attempt = 0);

  /// should_fail with an internal per-(point, key) attempt counter, for call
  /// sites that cannot thread a retry ordinal through.
  bool should_fail_seq(std::string_view point, std::uint64_t key);

  /// Throwing hooks: raise FaultError naming (point, key, attempt) when the
  /// decision fires.
  void check(std::string_view point, std::uint64_t key, std::uint64_t attempt = 0);
  void check_seq(std::string_view point, std::uint64_t key);

  PointCounters counters(const std::string& point) const;
  std::uint64_t total_injected() const;

 private:
  struct PointState {
    FaultSpec spec;
    PointCounters counters;
    std::unordered_map<std::uint64_t, std::uint64_t> seq_attempts;
  };

  bool decide(PointState& state, std::uint64_t point_hash, std::uint64_t key,
              std::uint64_t attempt);
  [[noreturn]] static void raise(std::string_view point, std::uint64_t key,
                                 std::uint64_t attempt);

  mutable std::mutex mu_;
  std::uint64_t seed_ = 0;
  std::unordered_map<std::string, PointState> points_;
  std::atomic<bool> armed_{false};
};

/// The process-wide injector every fault point consults.
FaultInjector& global_faults();

/// RAII arming of global_faults(): configures the seed on construction,
/// clears everything on destruction, so a throwing test cannot leak an armed
/// schedule into the next one.
class FaultScope {
 public:
  explicit FaultScope(std::uint64_t seed);
  ~FaultScope();
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

  FaultScope& arm(const std::string& point, FaultSpec spec);
};

}  // namespace trajkit
