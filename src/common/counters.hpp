// Lightweight service-side counters: a thread-safe log-bucketed latency
// histogram with percentile estimation.
//
// The serving layer records one sample per request from many threads, so the
// recorder must be wait-free on the hot path: samples land in fixed
// log2-spaced buckets (4 linear sub-buckets per octave, ~6% relative
// resolution) via a single relaxed fetch_add.  Percentiles are estimated by
// walking the cumulative bucket counts and interpolating inside the bucket —
// plenty for p50/p95/p99 service reporting, not for microbenchmarking.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace trajkit {

class LatencyHistogram {
 public:
  /// Record one latency sample.  Negative samples clamp to zero.
  void add_us(std::int64_t us);

  std::uint64_t count() const;

  /// Estimated q-quantile in microseconds, q in [0, 1].  Returns 0 when no
  /// samples were recorded.
  double quantile_us(double q) const;

  double p50_us() const { return quantile_us(0.50); }
  double p95_us() const { return quantile_us(0.95); }
  double p99_us() const { return quantile_us(0.99); }

 private:
  // 4 sub-buckets per power of two up to 2^62 us: index = 4*octave + sub.
  static constexpr std::size_t kSubBuckets = 4;
  static constexpr std::size_t kBuckets = 63 * kSubBuckets;

  static std::size_t bucket_of(std::uint64_t us);
  static double bucket_lower_us(std::size_t b);
  static double bucket_upper_us(std::size_t b);

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

}  // namespace trajkit
