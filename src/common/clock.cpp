#include "common/clock.hpp"

#include <chrono>

namespace trajkit {

std::int64_t SteadyClock::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const Clock& steady_clock() {
  static const SteadyClock clock;
  return clock;
}

}  // namespace trajkit
