#include "common/clock.hpp"

#include <chrono>
#include <thread>

namespace trajkit {

std::int64_t SteadyClock::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SteadyClock::sleep_us(std::int64_t us) const {
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

const Clock& steady_clock() {
  static const SteadyClock clock;
  return clock;
}

}  // namespace trajkit
