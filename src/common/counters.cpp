#include "common/counters.hpp"

#include <bit>

namespace trajkit {

std::size_t LatencyHistogram::bucket_of(std::uint64_t us) {
  if (us < kSubBuckets) return static_cast<std::size_t>(us);  // exact small values
  const std::size_t octave = std::bit_width(us) - 1;  // >= 2 here
  // Position of the top kSubBuckets' worth of the value below the leading bit.
  const std::size_t sub = (us >> (octave - 2)) & (kSubBuckets - 1);
  const std::size_t idx = octave * kSubBuckets + sub;
  return idx < kBuckets ? idx : kBuckets - 1;
}

double LatencyHistogram::bucket_lower_us(std::size_t b) {
  const std::size_t octave = b / kSubBuckets;
  const std::size_t sub = b % kSubBuckets;
  if (octave < 2) return static_cast<double>(b);  // the exact 0..3 us buckets
  const double base = static_cast<double>(std::uint64_t{1} << octave);
  return base + static_cast<double>(sub) * base / kSubBuckets;
}

double LatencyHistogram::bucket_upper_us(std::size_t b) {
  const std::size_t octave = b / kSubBuckets;
  if (octave < 2) return static_cast<double>(b) + 1.0;
  return bucket_lower_us(b) +
         static_cast<double>(std::uint64_t{1} << octave) / kSubBuckets;
}

void LatencyHistogram::add_us(std::int64_t us) {
  const std::uint64_t clamped = us > 0 ? static_cast<std::uint64_t>(us) : 0;
  buckets_[bucket_of(clamped)].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::count() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double LatencyHistogram::quantile_us(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t n = buckets_[b].load(std::memory_order_relaxed);
    if (n == 0) continue;
    if (static_cast<double>(seen + n) >= target) {
      // Linear interpolation inside the bucket.
      const double frac =
          n == 0 ? 0.0 : (target - static_cast<double>(seen)) / static_cast<double>(n);
      return bucket_lower_us(b) + frac * (bucket_upper_us(b) - bucket_lower_us(b));
    }
    seen += n;
  }
  return bucket_upper_us(kBuckets - 1);
}

}  // namespace trajkit
