#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace trajkit {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable::add_row: column count mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(width[c])) << row[c] << " |";
    }
    os << '\n';
  };
  print_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace trajkit
