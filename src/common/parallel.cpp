#include "common/parallel.hpp"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>

namespace trajkit {
namespace {

thread_local bool tl_in_parallel = false;

/// RAII flag marking the current thread as inside a parallel region.
struct RegionGuard {
  bool saved;
  RegionGuard() : saved(tl_in_parallel) { tl_in_parallel = true; }
  ~RegionGuard() { tl_in_parallel = saved; }
};

std::size_t resolve_auto_threads() {
  if (const char* env = std::getenv("TRAJKIT_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

struct GlobalPoolState {
  std::mutex mu;
  std::unique_ptr<ThreadPool> pool;
};

GlobalPoolState& pool_state() {
  static GlobalPoolState state;
  return state;
}

}  // namespace

struct ThreadPool::Batch {
  explicit Batch(std::size_t n, const std::function<void(std::size_t)>& f)
      : nchunks(n), fn(&f), errors(n) {}
  std::size_t nchunks;
  const std::function<void(std::size_t)>* fn;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::vector<std::exception_ptr> errors;  // slot per chunk; disjoint writes
  std::mutex done_mu;
  std::condition_variable done_cv;
};

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::in_parallel_region() { return tl_in_parallel; }

void ThreadPool::participate(Batch& batch) {
  RegionGuard guard;
  for (;;) {
    const std::size_t c = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= batch.nchunks) break;
    try {
      (*batch.fn)(c);
    } catch (...) {
      batch.errors[c] = std::current_exception();
    }
    if (batch.done.fetch_add(1, std::memory_order_acq_rel) + 1 == batch.nchunks) {
      std::lock_guard<std::mutex> lock(batch.done_mu);
      batch.done_cv.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || (batch_ && epoch_ != seen); });
      if (stop_) return;
      batch = batch_;
      seen = epoch_;
    }
    participate(*batch);
  }
}

void ThreadPool::run_chunks(std::size_t nchunks,
                            const std::function<void(std::size_t)>& chunk_fn) {
  if (nchunks == 0) return;
  // Serial fallback: no workers, a single chunk, or a nested region.  The
  // chunk order (0, 1, ...) matches the reduction order of the parallel path.
  if (workers_.empty() || nchunks == 1 || tl_in_parallel) {
    RegionGuard guard;
    for (std::size_t c = 0; c < nchunks; ++c) chunk_fn(c);
    return;
  }

  auto batch = std::make_shared<Batch>(nchunks, chunk_fn);
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = batch;
    ++epoch_;
  }
  work_cv_.notify_all();

  participate(*batch);
  {
    std::unique_lock<std::mutex> lock(batch->done_mu);
    batch->done_cv.wait(lock, [&] {
      return batch->done.load(std::memory_order_acquire) == nchunks;
    });
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_.reset();
  }
  // Deterministic error semantics: rethrow the lowest-indexed failure.
  for (auto& err : batch->errors) {
    if (err) std::rethrow_exception(err);
  }
}

std::size_t global_threads() { return global_pool().size(); }

void set_global_threads(std::size_t n) {
  if (ThreadPool::in_parallel_region()) {
    throw std::logic_error("set_global_threads: called inside a parallel region");
  }
  auto& state = pool_state();
  std::lock_guard<std::mutex> lock(state.mu);
  const std::size_t resolved = n > 0 ? n : resolve_auto_threads();
  if (state.pool && state.pool->size() == resolved) return;
  state.pool.reset();  // joins old workers before spawning replacements
  state.pool = std::make_unique<ThreadPool>(resolved);
}

ThreadPool& global_pool() {
  auto& state = pool_state();
  std::lock_guard<std::mutex> lock(state.mu);
  if (!state.pool) {
    state.pool = std::make_unique<ThreadPool>(resolve_auto_threads());
  }
  return *state.pool;
}

void parallel_chunks(std::size_t begin, std::size_t end, std::size_t grain,
                     const std::function<void(std::size_t, std::size_t)>& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const std::size_t nchunks = (end - begin + grain - 1) / grain;
  global_pool().run_chunks(nchunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * grain;
    const std::size_t hi = lo + grain < end ? lo + grain : end;
    fn(lo, hi);
  });
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t)>& fn) {
  parallel_chunks(begin, end, grain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

}  // namespace trajkit
