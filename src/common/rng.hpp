// Deterministic random number generation for simulations and experiments.
//
// Every stochastic component in trajkit takes an explicit Rng (or a seed) so
// that experiments are reproducible run-to-run.  Rng wraps a 64-bit
// SplitMix64-seeded xoshiro256** generator with convenience samplers.
#pragma once

#include <cstdint>
#include <vector>

namespace trajkit {

/// Deterministic pseudo-random generator (xoshiro256**).
///
/// Not thread-safe; create one per thread / per experiment strand.  `split()`
/// derives an independent child stream, which is the idiomatic way to hand
/// randomness to a sub-component without coupling its draw sequence to the
/// parent's.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// UniformRandomBitGenerator interface.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  /// Raw 64 random bits.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal draw (Box-Muller, cached spare).
  double normal();

  /// Normal draw with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli draw.
  bool chance(double p);

  /// Index draw from unnormalised non-negative weights.  Returns the index of
  /// the chosen weight; weights summing to zero yield index 0.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (advances this generator).
  Rng split();

  /// Counter-based sub-stream derivation: a generator that is a pure function
  /// of (key, index), with no shared state between indices.  This is how
  /// parallel tasks get their randomness — the caller draws one `key` from
  /// its own stream (e.g. `key = rng.next()`), then task i seeds itself with
  /// `Rng::substream(key, i)`.  Results are therefore independent of how
  /// tasks are scheduled across threads.
  static Rng substream(std::uint64_t key, std::uint64_t index);

 private:
  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace trajkit
