// Dynamic Time Warping between trajectories in the ENU plane.
//
// DTW is the trajectory-similarity metric used throughout the paper: in the
// navigation-attack loss (Eq. 1), the replay-attack loss2 (Eq. 2), the MinD
// lower-bound experiment, and the Fig. 3 iteration curves.
//
// Local cost is the Euclidean distance in metres.  Besides the value, the
// attack needs d DTW(T, T')/dT', which we compute as the subgradient along
// the optimal alignment path (the alignment is held fixed, each matched pair
// contributes the derivative of its Euclidean cost — the standard DTW
// subgradient).
#pragma once

#include <cstddef>
#include <vector>

#include "geo/geo.hpp"

namespace trajkit {

/// One matched index pair of a DTW alignment.
struct DtwPair {
  std::size_t i = 0;  ///< index into the first sequence
  std::size_t j = 0;  ///< index into the second sequence
};

/// DTW value plus its optimal alignment path (monotone, from (0,0) to
/// (n-1, m-1)).
struct DtwResult {
  double distance = 0.0;
  std::vector<DtwPair> path;
};

/// Full O(n*m) DTW with path recovery.
DtwResult dtw(const std::vector<Enu>& a, const std::vector<Enu>& b);

/// Exact DTW with path recovery, accelerated by pruning: a cheap banded pass
/// first yields an upper bound UB on the distance, then the full DP skips
/// every cell whose running cost already exceeds UB (such a cell can never
/// lie on the optimal path, and — because the local cost is non-negative and
/// the DP uses only adds and mins — the retained cells' values and
/// back-pointers are untouched).  Distance AND path are bit-identical to
/// dtw(); `band_hint` only tunes how tight the initial bound is.  This is the
/// attack-inner-loop variant: the iterate stays close to the reference, the
/// optimal corridor is narrow, and most of the n*m plane prunes away.
DtwResult dtw_pruned(const std::vector<Enu>& a, const std::vector<Enu>& b,
                     std::size_t band_hint = 16);

/// DTW distance only (no path), O(min(n,m)) memory.
double dtw_distance(const std::vector<Enu>& a, const std::vector<Enu>& b);

/// Early-abandoning variant: exact distance whenever the true distance is
/// <= abandon_above; otherwise some value > abandon_above (possibly +inf —
/// the DP prunes cells above the threshold and abandons once a whole row
/// exceeds it, which is sound because every warping path crosses every row
/// of the longer sequence and path costs only grow).  O(min(n,m)) memory.
/// Used by the MinD fast leg to skip pairs that cannot beat the minimum.
double dtw_distance(const std::vector<Enu>& a, const std::vector<Enu>& b,
                    double abandon_above);

/// Sakoe-Chiba banded DTW: alignment constrained to |i - j| <= band.
/// With band >= max(n, m) this equals full DTW.  Used as a faster variant in
/// the attack ablation.
DtwResult dtw_banded(const std::vector<Enu>& a, const std::vector<Enu>& b,
                     std::size_t band);

/// DTW normalised by the alignment-path length (metres per matched pair).
/// This is the "per-metre-class" quantity the paper's MinD thresholds
/// (1.2 / 1.5 / 1.4) are expressed in.
double dtw_normalized(const std::vector<Enu>& a, const std::vector<Enu>& b);

/// Subgradient of dtw(a, b).distance w.r.t. b, holding the optimal alignment
/// fixed.  `db` is accumulated into (+=) and must have b.size() entries.
/// Returns the DTW distance.
double dtw_gradient(const std::vector<Enu>& a, const std::vector<Enu>& b,
                    std::vector<Enu>& db);

}  // namespace trajkit
