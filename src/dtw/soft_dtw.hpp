// Soft-DTW: a smoothed, everywhere-differentiable DTW variant.
//
// The C&W attack differentiates DTW through its optimal alignment (a
// subgradient that is exact away from alignment switches).  Soft-DTW
// (Cuturi & Blondel, 2017) replaces the min in the DP recursion with
//   softmin_gamma(a, b, c) = -gamma * log(exp(-a/g) + exp(-b/g) + exp(-c/g))
// making the distance a smooth function of both sequences, at the cost of a
// temperature hyper-parameter and a value that underestimates true DTW.
// It is provided as an alternative distance for the attack (ablation) and as
// a robust similarity for analysis; gamma -> 0 recovers classic DTW.
#pragma once

#include <vector>

#include "geo/geo.hpp"

namespace trajkit {

struct SoftDtwResult {
  double value = 0.0;
};

/// Soft-DTW value with squared-Euclidean local costs (the standard choice —
/// squared costs keep the gradient smooth at coincident points).
double soft_dtw(const std::vector<Enu>& a, const std::vector<Enu>& b, double gamma);

/// Soft-DTW value and its exact gradient w.r.t. `b` (accumulated into `db`).
/// Gradient computed by the standard forward-backward recursion over the
/// soft alignment matrix.
double soft_dtw_gradient(const std::vector<Enu>& a, const std::vector<Enu>& b,
                         double gamma, std::vector<Enu>& db);

}  // namespace trajkit
