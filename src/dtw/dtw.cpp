#include "dtw/dtw.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace trajkit {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEpsM = 1e-9;

void check_nonempty(const std::vector<Enu>& a, const std::vector<Enu>& b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("dtw: sequences must be non-empty");
  }
}

// Shared DP with an optional Sakoe-Chiba band; band == SIZE_MAX disables it.
DtwResult dtw_impl(const std::vector<Enu>& a, const std::vector<Enu>& b,
                   std::size_t band) {
  check_nonempty(a, b);
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  // The band must at least cover the diagonal slope difference or no
  // monotone path from (0,0) to (n-1,m-1) exists inside it.
  const std::size_t min_band = n > m ? n - m : m - n;
  const std::size_t eff_band = std::max(band, min_band);

  std::vector<double> cost(n * m, kInf);
  // Back-pointer: 0 = diag, 1 = up (i-1), 2 = left (j-1), 3 = start.
  std::vector<unsigned char> from(n * m, 3);
  auto idx = [m](std::size_t i, std::size_t j) { return i * m + j; };
  auto in_band = [eff_band](std::size_t i, std::size_t j) {
    return (i >= j ? i - j : j - i) <= eff_band;
  };

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (!in_band(i, j)) continue;
      const double d = distance(a[i], b[j]);
      if (i == 0 && j == 0) {
        cost[idx(0, 0)] = d;
        from[idx(0, 0)] = 3;
        continue;
      }
      double best = kInf;
      unsigned char dir = 3;
      if (i > 0 && j > 0 && cost[idx(i - 1, j - 1)] < best) {
        best = cost[idx(i - 1, j - 1)];
        dir = 0;
      }
      if (i > 0 && cost[idx(i - 1, j)] < best) {
        best = cost[idx(i - 1, j)];
        dir = 1;
      }
      if (j > 0 && cost[idx(i, j - 1)] < best) {
        best = cost[idx(i, j - 1)];
        dir = 2;
      }
      cost[idx(i, j)] = best + d;
      from[idx(i, j)] = dir;
    }
  }

  DtwResult result;
  result.distance = cost[idx(n - 1, m - 1)];
  // Backtrack.
  std::size_t i = n - 1;
  std::size_t j = m - 1;
  while (true) {
    result.path.push_back({i, j});
    const unsigned char dir = from[idx(i, j)];
    if (dir == 3) break;
    if (dir == 0) {
      --i;
      --j;
    } else if (dir == 1) {
      --i;
    } else {
      --j;
    }
  }
  std::reverse(result.path.begin(), result.path.end());
  return result;
}

// Banded two-row value-only DP: the cost of the best warping path that stays
// within |i - j| <= band.  Because every DP operation is a single IEEE add or
// a min over already-computed values, restricting the cell set can only raise
// (never perturb) the result: the return value is a bitwise upper bound on
// dtw(a, b).distance computed from the same distance() calls.
double dtw_banded_upper_bound(const std::vector<Enu>& a, const std::vector<Enu>& b,
                              std::size_t band) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  const std::size_t min_band = n > m ? n - m : m - n;
  const std::size_t eff_band = std::max(band, min_band);

  std::vector<double> prev(m, kInf);
  std::vector<double> curr(m, kInf);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t jlo = i > eff_band ? i - eff_band : 0;
    const std::size_t jhi = std::min(m - 1, i + eff_band);
    // Reset only the span this row writes plus the one-cell margins the next
    // row reads ([jlo' - 1, jhi'] with jlo' >= jlo, jhi' <= jhi + 1); cells
    // outside it are never read again, so the stale values two rows back are
    // harmless and the fill cost tracks the band, not m.
    std::fill(curr.begin() + (jlo > 0 ? jlo - 1 : 0),
              curr.begin() + std::min(jhi + 2, m), kInf);
    for (std::size_t j = jlo; j <= jhi; ++j) {
      double best = kInf;
      if (i > 0 && j > 0) best = std::min(best, prev[j - 1]);
      if (i > 0) best = std::min(best, prev[j]);
      if (j > 0) best = std::min(best, curr[j - 1]);
      if (i == 0 && j == 0) {
        curr[0] = distance(a[0], b[0]);
        continue;
      }
      if (best == kInf) continue;  // outside last row's band
      curr[j] = best + distance(a[i], b[j]);
    }
    std::swap(prev, curr);
  }
  return prev[m - 1];
}

}  // namespace

DtwResult dtw(const std::vector<Enu>& a, const std::vector<Enu>& b) {
  return dtw_impl(a, b, std::numeric_limits<std::size_t>::max());
}

DtwResult dtw_pruned(const std::vector<Enu>& a, const std::vector<Enu>& b,
                     std::size_t band_hint) {
  check_nonempty(a, b);
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  const double ub = dtw_banded_upper_bound(a, b, band_hint);

  // Full DP, pruning any cell whose value exceeds ub.  Correctness sketch:
  // path costs are monotone along a path (costs are >= 0 and x + d >= x under
  // IEEE rounding), so every cell on the optimal path has value <= D <= ub.
  // For any cell with true value <= ub, its true argmin predecessor also has
  // value <= ub, hence (inductively) is retained with its exact value; a
  // pruned competitor had value > ub >= this cell's value >= argmin, so it
  // was strictly worse and could not have won the min or shifted the
  // tie-break.  Retained cells therefore carry bit-identical values and
  // back-pointers, and the backtrack reproduces dtw()'s path exactly.
  //
  // Storage: the recurrence only reads row i-1 and the current row's left
  // neighbour, so values live in two m-length rows (L1-resident) instead of
  // an n*m matrix.  Back-pointers do need the whole grid for the backtrack,
  // but the grid is never bulk-initialised: every stored direction points at
  // the predecessor that supplied a finite value, i.e. a written cell, so the
  // backtrack never reads an unwritten entry.  All three buffers are
  // thread-local scratch — the attack calls this every iteration and the
  // mallocs would otherwise show up in the inner loop.
  thread_local std::vector<double> row_a;
  thread_local std::vector<double> row_b;
  thread_local std::vector<unsigned char> from_store;
  if (row_a.size() < m) {
    row_a.resize(m);
    row_b.resize(m);
  }
  if (from_store.size() < n * m) from_store.resize(n * m);
  double* prev = row_a.data();
  double* curr = row_b.data();
  unsigned char* const from = from_store.data();
  // Row 0's buffer must read as kInf beyond the chain it writes (row 1 can
  // scan up to two cells past it); the other row is span-filled per row.
  std::fill(curr, curr + m, kInf);
  auto idx = [m](std::size_t i, std::size_t j) { return i * m + j; };

  curr[0] = distance(a[0], b[0]);
  from[idx(0, 0)] = 3;
  // Per-row live window [jlo, jhi]: columns left of jlo are unreachable
  // (their up/diag/left predecessors are all pruned), columns right of jhi
  // can only be reached through a left-neighbour chain in the current row.
  std::size_t jlo = 0;
  std::size_t jhi = 0;
  for (std::size_t j = 1; j < m; ++j) {  // row 0: pure left chain
    const double c = curr[j - 1] + distance(a[0], b[j]);
    if (c > ub) break;  // further cells only grow along the chain
    curr[j] = c;
    from[idx(0, j)] = 2;
    jhi = j;
  }
  std::swap(prev, curr);
  bool completed = true;
  for (std::size_t i = 1; i < n; ++i) {
    // Reset the span this row can read or write ([jlo - 1, m)); cells left of
    // it still hold stale values but are never read again: the window only
    // moves right.
    std::fill(curr + (jlo > 0 ? jlo - 1 : 0), curr + m, kInf);
    std::size_t next_lo = m;
    std::size_t next_hi = 0;
    bool any = false;
    for (std::size_t j = jlo; j < m; ++j) {
      if (j > jhi + 1 && curr[j - 1] == kInf) break;  // window closed
      double best = kInf;
      unsigned char dir = 3;
      if (j > 0 && prev[j - 1] < best) {
        best = prev[j - 1];
        dir = 0;
      }
      if (prev[j] < best) {
        best = prev[j];
        dir = 1;
      }
      if (j > 0 && curr[j - 1] < best) {
        best = curr[j - 1];
        dir = 2;
      }
      if (best > ub) continue;  // adding d >= 0 cannot bring it back under
      const double c = best + distance(a[i], b[j]);
      if (c > ub) continue;
      curr[j] = c;
      from[idx(i, j)] = dir;
      if (!any) {
        next_lo = j;
        any = true;
      }
      next_hi = j;
    }
    if (!any) {  // whole row pruned; no path survives -> fallback
      completed = false;
      break;
    }
    jlo = next_lo;
    jhi = next_hi;
    std::swap(prev, curr);
  }

  if (!completed || prev[m - 1] == kInf) {
    // Cannot happen when ub >= D (the optimal path survives pruning); kept as
    // a safety net so a bound bug degrades to slow-but-correct.
    return dtw_impl(a, b, std::numeric_limits<std::size_t>::max());
  }

  DtwResult result;
  result.distance = prev[m - 1];
  std::size_t i = n - 1;
  std::size_t j = m - 1;
  while (true) {
    result.path.push_back({i, j});
    const unsigned char dir = from[idx(i, j)];
    if (dir == 3) break;
    if (dir == 0) {
      --i;
      --j;
    } else if (dir == 1) {
      --i;
    } else {
      --j;
    }
  }
  std::reverse(result.path.begin(), result.path.end());
  return result;
}

DtwResult dtw_banded(const std::vector<Enu>& a, const std::vector<Enu>& b,
                     std::size_t band) {
  return dtw_impl(a, b, band);
}

double dtw_distance(const std::vector<Enu>& a, const std::vector<Enu>& b) {
  return dtw_distance(a, b, kInf);
}

double dtw_distance(const std::vector<Enu>& a, const std::vector<Enu>& b,
                    double abandon_above) {
  check_nonempty(a, b);
  // Two-row DP; iterate over the longer sequence to keep rows short
  // (O(min(n, m)) memory).  Every monotone warping path crosses every row of
  // the longer sequence and path costs only grow, so once a whole row's
  // minimum exceeds `abandon_above` the final distance must too and the DP
  // abandons with +inf.  With abandon_above = +inf the check never fires and
  // the result is the plain exact distance.
  const std::vector<Enu>& rows = a.size() >= b.size() ? a : b;
  const std::vector<Enu>& cols = a.size() >= b.size() ? b : a;
  const std::size_t m = cols.size();
  std::vector<double> prev(m, kInf);
  std::vector<double> curr(m, kInf);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    double row_min = kInf;
    for (std::size_t j = 0; j < m; ++j) {
      if (i == 0 && j == 0) {
        curr[0] = distance(rows[0], cols[0]);
        row_min = curr[0];
        continue;
      }
      double best = kInf;
      if (i > 0 && j > 0) best = std::min(best, prev[j - 1]);
      if (i > 0) best = std::min(best, prev[j]);
      if (j > 0) best = std::min(best, curr[j - 1]);
      // A cell already above the threshold cannot sit on any path that
      // finishes at or below it (path costs only grow), so its exact value is
      // irrelevant: skip the distance call and leave it +inf.  When the true
      // distance is <= abandon_above the optimal path's cells all survive and
      // the result is exact; above it the DP abandons.  With the default
      // +inf threshold the branch is dead and the DP is the plain exact one.
      if (best > abandon_above) continue;
      curr[j] = best + distance(rows[i], cols[j]);
      row_min = std::min(row_min, curr[j]);
    }
    if (row_min > abandon_above) return kInf;
    std::swap(prev, curr);
    std::fill(curr.begin(), curr.end(), kInf);
  }
  return prev[m - 1];
}

double dtw_normalized(const std::vector<Enu>& a, const std::vector<Enu>& b) {
  const auto r = dtw(a, b);
  return r.distance / static_cast<double>(r.path.size());
}

double dtw_gradient(const std::vector<Enu>& a, const std::vector<Enu>& b,
                    std::vector<Enu>& db) {
  if (db.size() != b.size()) {
    throw std::invalid_argument("dtw_gradient: db size mismatch");
  }
  const auto r = dtw(a, b);
  for (const auto& pair : r.path) {
    const Enu& p = a[pair.i];
    const Enu& q = b[pair.j];
    const double d = std::max(distance(p, q), kEpsM);
    db[pair.j].east += (q.east - p.east) / d;
    db[pair.j].north += (q.north - p.north) / d;
  }
  return r.distance;
}

}  // namespace trajkit
