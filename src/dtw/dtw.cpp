#include "dtw/dtw.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace trajkit {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEpsM = 1e-9;

void check_nonempty(const std::vector<Enu>& a, const std::vector<Enu>& b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("dtw: sequences must be non-empty");
  }
}

// Shared DP with an optional Sakoe-Chiba band; band == SIZE_MAX disables it.
DtwResult dtw_impl(const std::vector<Enu>& a, const std::vector<Enu>& b,
                   std::size_t band) {
  check_nonempty(a, b);
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  // The band must at least cover the diagonal slope difference or no
  // monotone path from (0,0) to (n-1,m-1) exists inside it.
  const std::size_t min_band = n > m ? n - m : m - n;
  const std::size_t eff_band = std::max(band, min_band);

  std::vector<double> cost(n * m, kInf);
  // Back-pointer: 0 = diag, 1 = up (i-1), 2 = left (j-1), 3 = start.
  std::vector<unsigned char> from(n * m, 3);
  auto idx = [m](std::size_t i, std::size_t j) { return i * m + j; };
  auto in_band = [eff_band](std::size_t i, std::size_t j) {
    return (i >= j ? i - j : j - i) <= eff_band;
  };

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (!in_band(i, j)) continue;
      const double d = distance(a[i], b[j]);
      if (i == 0 && j == 0) {
        cost[idx(0, 0)] = d;
        from[idx(0, 0)] = 3;
        continue;
      }
      double best = kInf;
      unsigned char dir = 3;
      if (i > 0 && j > 0 && cost[idx(i - 1, j - 1)] < best) {
        best = cost[idx(i - 1, j - 1)];
        dir = 0;
      }
      if (i > 0 && cost[idx(i - 1, j)] < best) {
        best = cost[idx(i - 1, j)];
        dir = 1;
      }
      if (j > 0 && cost[idx(i, j - 1)] < best) {
        best = cost[idx(i, j - 1)];
        dir = 2;
      }
      cost[idx(i, j)] = best + d;
      from[idx(i, j)] = dir;
    }
  }

  DtwResult result;
  result.distance = cost[idx(n - 1, m - 1)];
  // Backtrack.
  std::size_t i = n - 1;
  std::size_t j = m - 1;
  while (true) {
    result.path.push_back({i, j});
    const unsigned char dir = from[idx(i, j)];
    if (dir == 3) break;
    if (dir == 0) {
      --i;
      --j;
    } else if (dir == 1) {
      --i;
    } else {
      --j;
    }
  }
  std::reverse(result.path.begin(), result.path.end());
  return result;
}

}  // namespace

DtwResult dtw(const std::vector<Enu>& a, const std::vector<Enu>& b) {
  return dtw_impl(a, b, std::numeric_limits<std::size_t>::max());
}

DtwResult dtw_banded(const std::vector<Enu>& a, const std::vector<Enu>& b,
                     std::size_t band) {
  return dtw_impl(a, b, band);
}

double dtw_distance(const std::vector<Enu>& a, const std::vector<Enu>& b) {
  check_nonempty(a, b);
  // Two-row DP; iterate over the longer sequence to keep rows short.
  const std::vector<Enu>& rows = a.size() >= b.size() ? a : b;
  const std::vector<Enu>& cols = a.size() >= b.size() ? b : a;
  const std::size_t m = cols.size();
  std::vector<double> prev(m, kInf);
  std::vector<double> curr(m, kInf);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const double d = distance(rows[i], cols[j]);
      if (i == 0 && j == 0) {
        curr[j] = d;
        continue;
      }
      double best = kInf;
      if (i > 0 && j > 0) best = std::min(best, prev[j - 1]);
      if (i > 0) best = std::min(best, prev[j]);
      if (j > 0) best = std::min(best, curr[j - 1]);
      curr[j] = best + d;
    }
    std::swap(prev, curr);
    std::fill(curr.begin(), curr.end(), kInf);
  }
  return prev[m - 1];
}

double dtw_normalized(const std::vector<Enu>& a, const std::vector<Enu>& b) {
  const auto r = dtw(a, b);
  return r.distance / static_cast<double>(r.path.size());
}

double dtw_gradient(const std::vector<Enu>& a, const std::vector<Enu>& b,
                    std::vector<Enu>& db) {
  if (db.size() != b.size()) {
    throw std::invalid_argument("dtw_gradient: db size mismatch");
  }
  const auto r = dtw(a, b);
  for (const auto& pair : r.path) {
    const Enu& p = a[pair.i];
    const Enu& q = b[pair.j];
    const double d = std::max(distance(p, q), kEpsM);
    db[pair.j].east += (q.east - p.east) / d;
    db[pair.j].north += (q.north - p.north) / d;
  }
  return r.distance;
}

}  // namespace trajkit
