#include "dtw/soft_dtw.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace trajkit {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double softmin3(double a, double b, double c, double gamma) {
  const double m = std::min({a, b, c});
  if (m == kInf) return kInf;
  double total = 0.0;
  if (a != kInf) total += std::exp(-(a - m) / gamma);
  if (b != kInf) total += std::exp(-(b - m) / gamma);
  if (c != kInf) total += std::exp(-(c - m) / gamma);
  return m - gamma * std::log(total);
}

double sq_cost(const Enu& p, const Enu& q) { return distance_sq(p, q); }

void check_inputs(const std::vector<Enu>& a, const std::vector<Enu>& b, double gamma) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("soft_dtw: sequences must be non-empty");
  }
  if (gamma <= 0.0) throw std::invalid_argument("soft_dtw: gamma must be positive");
}

/// Forward DP into a padded (n+2) x (m+2) R matrix (1-indexed interior).
std::vector<double> forward_r(const std::vector<Enu>& a, const std::vector<Enu>& b,
                              double gamma) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  std::vector<double> r((n + 2) * (m + 2), kInf);
  auto R = [&r, m](std::size_t i, std::size_t j) -> double& {
    return r[i * (m + 2) + j];
  };
  R(0, 0) = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      R(i, j) = sq_cost(a[i - 1], b[j - 1]) +
                softmin3(R(i - 1, j), R(i, j - 1), R(i - 1, j - 1), gamma);
    }
  }
  return r;
}

}  // namespace

double soft_dtw(const std::vector<Enu>& a, const std::vector<Enu>& b, double gamma) {
  check_inputs(a, b, gamma);
  const auto r = forward_r(a, b, gamma);
  return r[a.size() * (b.size() + 2) + b.size()];
}

double soft_dtw_gradient(const std::vector<Enu>& a, const std::vector<Enu>& b,
                         double gamma, std::vector<Enu>& db) {
  check_inputs(a, b, gamma);
  if (db.size() != b.size()) {
    throw std::invalid_argument("soft_dtw_gradient: db size mismatch");
  }
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  auto r = forward_r(a, b, gamma);
  auto R = [&r, m](std::size_t i, std::size_t j) -> double& {
    return r[i * (m + 2) + j];
  };
  const double value = R(n, m);

  // Local costs padded with a zero column/row for the backward pass.
  std::vector<double> d((n + 2) * (m + 2), 0.0);
  auto D = [&d, m](std::size_t i, std::size_t j) -> double& {
    return d[i * (m + 2) + j];
  };
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) D(i, j) = sq_cost(a[i - 1], b[j - 1]);
  }

  // Backward recursion for the soft alignment matrix E (Cuturi & Blondel).
  std::vector<double> e((n + 2) * (m + 2), 0.0);
  auto E = [&e, m](std::size_t i, std::size_t j) -> double& {
    return e[i * (m + 2) + j];
  };
  // Boundary setup: R(i, m+1) = R(n+1, j) = -inf except the terminal corner.
  for (std::size_t i = 0; i <= n; ++i) R(i, m + 1) = -kInf;
  for (std::size_t j = 0; j <= m; ++j) R(n + 1, j) = -kInf;
  R(n + 1, m + 1) = R(n, m);
  E(n + 1, m + 1) = 1.0;
  D(n + 1, m + 1) = 0.0;

  for (std::size_t j = m; j >= 1; --j) {
    for (std::size_t i = n; i >= 1; --i) {
      const double rij = R(i, j);
      const double x =
          R(i + 1, j) == -kInf
              ? 0.0
              : E(i + 1, j) * std::exp((R(i + 1, j) - rij - D(i + 1, j)) / gamma);
      const double y =
          R(i, j + 1) == -kInf
              ? 0.0
              : E(i, j + 1) * std::exp((R(i, j + 1) - rij - D(i, j + 1)) / gamma);
      const double z = R(i + 1, j + 1) == -kInf
                           ? 0.0
                           : E(i + 1, j + 1) *
                                 std::exp((R(i + 1, j + 1) - rij - D(i + 1, j + 1)) /
                                          gamma);
      E(i, j) = x + y + z;
    }
  }

  // Chain rule: dSDTW/db_j = sum_i E(i,j) * 2 (b_j - a_i).
  for (std::size_t j = 1; j <= m; ++j) {
    for (std::size_t i = 1; i <= n; ++i) {
      const double w = E(i, j);
      if (w == 0.0) continue;
      db[j - 1].east += w * 2.0 * (b[j - 1].east - a[i - 1].east);
      db[j - 1].north += w * 2.0 * (b[j - 1].north - a[i - 1].north);
    }
  }
  return value;
}

}  // namespace trajkit
